//! Design-space-exploration engine benchmarks: sweep throughput per backend,
//! and the effect of the memoisation cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mp_dse::prelude::*;
use mp_model::growth::GrowthFunction;
use mp_model::params::AppParams;

fn space() -> ScenarioSpace {
    ScenarioSpace::new()
        .with_apps(AppParams::paper_catalog())
        .with_budgets(vec![256.0])
        .with_growths(vec![GrowthFunction::Linear, GrowthFunction::Logarithmic])
        .clear_designs()
        .add_symmetric_grid((0..128).map(|i| 1.0 + i as f64 * 2.0))
        .add_asymmetric_grid([1.0, 4.0], [4.0, 16.0, 64.0])
}

fn bench_dse(c: &mut Criterion) {
    let space = space();
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);

    let mut group = c.benchmark_group(format!("dse/sweep-{}-scenarios", space.len()));
    for backend_name in ["analytic", "comm"] {
        group.bench_with_input(
            BenchmarkId::new("uncached", backend_name),
            &backend_name,
            |b, &name| {
                let engine = Engine::new(threads);
                let config = SweepConfig { batch_size: 1024, use_cache: false };
                b.iter(|| match name {
                    "analytic" => engine.sweep(&space, &AnalyticBackend, &config),
                    _ => engine.sweep(&space, &CommBackend::new(), &config),
                });
            },
        );
    }
    group.bench_function("cached-resweep", |b| {
        let engine = Engine::new(threads);
        let config = SweepConfig { batch_size: 1024, use_cache: true };
        engine.sweep(&space, &AnalyticBackend, &config); // warm
        b.iter(|| engine.sweep(&space, &AnalyticBackend, &config));
    });
    group.finish();

    c.bench_function("dse/pareto-frontier", |b| {
        let engine = Engine::new(threads);
        let result = engine.sweep(
            &space,
            &AnalyticBackend,
            &SweepConfig { batch_size: 1024, use_cache: false },
        );
        b.iter(|| pareto_frontier(&result.records, CostAxis::Cores));
    });
}

criterion_group!(benches, bench_dse);
criterion_main!(benches);
