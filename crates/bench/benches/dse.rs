//! Design-space-exploration engine benchmarks: sweep throughput per backend,
//! the columnar prepared path against the naive per-scenario loop, the
//! lock-free memoisation cache's probe/insert costs, and the effect of the
//! cache on whole sweeps.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use mp_dse::prelude::*;
use mp_model::growth::GrowthFunction;
use mp_model::params::AppParams;

fn space() -> ScenarioSpace {
    ScenarioSpace::new()
        .with_apps(AppParams::paper_catalog())
        .with_budgets(vec![256.0])
        .with_growths(vec![GrowthFunction::Linear, GrowthFunction::Logarithmic])
        .clear_designs()
        .add_symmetric_grid((0..128).map(|i| 1.0 + i as f64 * 2.0))
        .add_asymmetric_grid([1.0, 4.0], [4.0, 16.0, 64.0])
}

fn bench_dse(c: &mut Criterion) {
    let space = space();
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);

    let mut group = c.benchmark_group(format!("dse/sweep-{}-scenarios", space.len()));
    for backend_name in ["analytic", "comm"] {
        group.bench_with_input(
            BenchmarkId::new("uncached", backend_name),
            &backend_name,
            |b, &name| {
                let engine = Engine::new(threads);
                let config = SweepConfig { batch_size: 1024, use_cache: false };
                b.iter(|| match name {
                    "analytic" => engine.sweep(&space, &AnalyticBackend, &config),
                    _ => engine.sweep(&space, &CommBackend::new(), &config),
                });
            },
        );
    }
    group.bench_function("cached-resweep", |b| {
        let engine = Engine::new(threads);
        let config = SweepConfig { batch_size: 1024, use_cache: true };
        engine.sweep(&space, &AnalyticBackend, &config); // warm
        b.iter(|| engine.sweep(&space, &AnalyticBackend, &config));
    });
    group.finish();

    c.bench_function("dse/pareto-frontier", |b| {
        let engine = Engine::new(threads);
        let result = engine.sweep(
            &space,
            &AnalyticBackend,
            &SweepConfig { batch_size: 1024, use_cache: false },
        );
        b.iter(|| pareto_frontier(&result.records, CostAxis::Cores));
    });

    bench_prepared_vs_naive(c);
    bench_cache_probe(c);
}

/// The columnar prepared batch path against the naive per-scenario default
/// loop (decode + clone-owning model per scenario), over identical batches.
fn bench_prepared_vs_naive(c: &mut Criterion) {
    let space = space();
    let n = space.len();
    let tables = SpaceTables::new(&space);
    let mut group = c.benchmark_group("dse/prepared_vs_naive");
    group.bench_function("naive-per-scenario", |b| {
        let mut out = vec![f64::NAN; n];
        b.iter(|| {
            // The trait's default loop: decode + fits + owned model each time.
            struct Naive;
            impl EvalBackend for Naive {
                fn name(&self) -> &'static str {
                    "naive"
                }
                fn evaluate(&self, scenario: &Scenario<'_>) -> Result<f64, DseError> {
                    AnalyticBackend.evaluate(scenario)
                }
            }
            Naive.evaluate_batch(&space, 0..n, &mut out);
            black_box(out[0])
        });
    });
    group.bench_function("prepared-columnar", |b| {
        let mut out = vec![f64::NAN; n];
        b.iter(|| {
            AnalyticBackend.evaluate_batch_prepared(&space, &tables, 0..n, &mut out);
            black_box(out[0])
        });
    });
    group.finish();
}

/// Probe and insert costs of the lock-free memoisation cache at sweep scale.
fn bench_cache_probe(c: &mut Criterion) {
    let space = space();
    let n = space.len();
    let keys: Vec<(u64, u64)> =
        (0..n).map(|i| space.scenario(i).canonical_key("analytic")).collect();
    let values: Vec<f64> = (0..n).map(|i| i as f64).collect();

    let mut group = c.benchmark_group(format!("dse/cache-{n}-keys"));
    group.bench_function("insert-batch-reserved", |b| {
        b.iter(|| {
            let cache = EvalCache::new();
            cache.reserve(n);
            cache.insert_batch(&keys, &values);
            black_box(cache.len())
        });
    });
    group.bench_function("probe-warm", |b| {
        let cache = EvalCache::new();
        cache.reserve(n);
        cache.insert_batch(&keys, &values);
        b.iter(|| {
            cache.prefetch(&keys);
            let mut acc = 0u64;
            for &key in &keys {
                acc ^= cache.peek(key).unwrap_or(f64::NAN).to_bits();
            }
            black_box(acc)
        });
    });
    group.bench_function("probe-cold-miss", |b| {
        let cache = EvalCache::new();
        cache.reserve(n);
        b.iter(|| {
            let mut misses = 0usize;
            for &key in &keys {
                misses += usize::from(cache.peek(key).is_none());
            }
            black_box(misses)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_dse);
criterion_main!(benches);
