//! The `repro calibrate` subcommand: the paper's loop, end to end.
//!
//! 1. **Measure** — run all four phased workloads (kmeans, fuzzy, hop,
//!    kdtree) through the `mp-runtime` scheduler across a thread sweep,
//!    streaming the instrumented records into one
//!    [`StreamingExtractor`] per workload (no flat profile lists).
//! 2. **Calibrate** — fit a [`CalibratedParams`] set per workload:
//!    `f`/`fcon`/`fred` from the single-thread run plus the growth shape and
//!    `fored` that best explain the measured serial-section multipliers.
//! 3. **Explore** — hand the calibrations to a [`MeasuredBackend`] and sweep
//!    a symmetric + asymmetric design space through the `mp-dse` engine,
//!    reporting top designs and per-axis optima and exporting the sweep.
//!
//! Measured times are wall-clock, so the fitted numbers vary run to run and
//! host to host; the *pipeline* (and the reported growth shapes) is the
//! reproducible part.

use std::path::PathBuf;
use std::process::ExitCode;

use mp_dse::prelude::*;
use mp_model::calibrate::CalibratedParams;
use mp_model::perf::PerfModel;
use mp_profile::{render_table, StreamingExtractor, TableRow};
use mp_workloads::data::DatasetSpec;
use mp_workloads::kmeans::KMeansConfig;
use mp_workloads::runner::{default_thread_sweep, ClusteringWorkload};

use crate::dse_cmd::{export_sweep, record_row, scenario_label};

/// The `calibrate` flags that consume a value token (see
/// [`crate::dse_cmd::VALUE_FLAGS`] for why this lives next to `parse`).
pub const VALUE_FLAGS: &[&str] = &["--threads", "--out", "--top"];

struct Options {
    threads: usize,
    out_dir: PathBuf,
    quick: bool,
    json: bool,
    exact: bool,
    top_k: usize,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        threads: 8,
        out_dir: PathBuf::from("target/calibrate"),
        quick: false,
        json: false,
        exact: false,
        top_k: 10,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let arg = arg.as_str();
        if VALUE_FLAGS.contains(&arg) {
            let value = iter.next().ok_or_else(|| format!("{arg} needs a value"))?.clone();
            match arg {
                "--threads" => {
                    options.threads = crate::cli::parse_parallelism(arg, &value)?;
                }
                "--out" => options.out_dir = PathBuf::from(value),
                "--top" => {
                    options.top_k = crate::cli::parse_count(arg, &value, 1, crate::cli::MAX_COUNT)?;
                }
                other => unreachable!("{other} is listed in VALUE_FLAGS but unhandled"),
            }
        } else {
            match arg {
                "--json" => options.json = true,
                "--quick" => options.quick = true,
                "--exact" => options.exact = true,
                other => return Err(format!("unknown calibrate option `{other}`")),
            }
        }
    }
    Ok(options)
}

/// The four calibration jobs: the paper's three applications plus the
/// kd-tree scenario, on fig2c-style data sets.
fn jobs(quick: bool) -> Vec<ClusteringWorkload> {
    let (cluster_spec, hop_spec) = if quick {
        (DatasetSpec::new(4000, 9, 8, 0x5EED), DatasetSpec::new(6000, 3, 16, 0x401))
    } else {
        (DatasetSpec::base(), DatasetSpec::hop_default())
    };
    let cluster_data = cluster_spec.generate();
    // Disable early convergence for kmeans (as in fig2c): a run that settles
    // after two iterations leaves per-phase times too small for stable
    // wall-clock ratios.
    let mut kmeans_cfg = KMeansConfig::for_dataset(&cluster_data);
    kmeans_cfg.threshold = -1.0;
    kmeans_cfg.max_iters = if quick { 20 } else { 50 };
    vec![
        ClusteringWorkload::kmeans(cluster_data).with_kmeans_config(kmeans_cfg),
        ClusteringWorkload::fuzzy(cluster_spec.generate()),
        ClusteringWorkload::hop(hop_spec.generate()),
        ClusteringWorkload::kdtree(hop_spec.generate()),
    ]
}

/// Measure and calibrate every job across `thread_counts`.
fn calibrate_jobs(
    workloads: &[ClusteringWorkload],
    thread_counts: &[usize],
) -> Result<Vec<CalibratedParams>, String> {
    let mut calibrations = Vec::with_capacity(workloads.len());
    for job in workloads {
        let extractor = StreamingExtractor::new(job.kind().name());
        for &threads in thread_counts {
            job.run_with_sink(threads, &extractor.run_sink(threads));
        }
        let calibrated = extractor
            .calibrate()
            .map_err(|e| format!("calibration of `{}` failed: {e}", job.kind().name()))?;
        calibrations.push(calibrated);
    }
    Ok(calibrations)
}

fn calibration_row(calibration: &CalibratedParams) -> TableRow {
    let app = calibration.app_params();
    TableRow::new(format!("{} [{}]", app.name, calibration.growth().label()))
        .with("f", app.f)
        .with("serial_pct", app.serial_fraction() * 100.0)
        .with("fcon_pct", app.split.fcon * 100.0)
        .with("fred_pct", app.split.fred * 100.0)
        .with("fored_pct", app.fored * 100.0)
        .with("fit_rmse", calibration.fit_rmse())
}

/// The design space explored with the calibrated backend.
fn build_space(options: &Options, backend: &MeasuredBackend) -> ScenarioSpace {
    let (sym_points, budgets) =
        if options.quick { (32usize, vec![256.0]) } else { (256usize, vec![64.0, 256.0, 1024.0]) };
    let max_r: f64 = 64.0; // valid under every budget
    let sym = (0..sym_points)
        .map(move |i| max_r.powf(i as f64 / (sym_points.saturating_sub(1).max(1)) as f64));
    let pow2 = |limit: f64| {
        std::iter::successors(Some(1.0f64), move |r| (r * 2.0 <= limit).then_some(r * 2.0))
    };
    let perfs = if options.quick {
        vec![PerfModel::Pollack]
    } else {
        vec![PerfModel::Pollack, PerfModel::Power(0.75)]
    };
    ScenarioSpace::new()
        .with_apps(backend.apps())
        .with_budgets(budgets)
        .clear_designs()
        .add_symmetric_grid(sym)
        .add_asymmetric_grid([1.0, 2.0, 4.0], pow2(64.0).skip(1))
        .with_perfs(perfs)
}

/// Entry point of the `calibrate` subcommand.
pub fn run(args: &[String]) -> ExitCode {
    let options = match parse(args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            eprintln!(
                "usage: repro calibrate [--threads N] [--out DIR] [--top K] [--quick] [--exact] [--json]"
            );
            return ExitCode::FAILURE;
        }
    };

    let thread_counts = default_thread_sweep(options.threads);
    let workloads = jobs(options.quick);
    let calibrations = match calibrate_jobs(&workloads, &thread_counts) {
        Ok(calibrations) => calibrations,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let mut backend = MeasuredBackend::new(calibrations);
    if options.exact {
        backend = backend.with_exact_growth();
    }
    let space = build_space(&options, &backend);
    let engine = Engine::with_all_cores();
    let result = engine.sweep(&space, &backend, &SweepConfig::default());
    let top = top_k(&result.records, options.top_k);
    let optima = per_axis_optima(&space, &result.records);

    if let Err(e) = export_sweep(&options.out_dir, &space, &result) {
        eprintln!("export failed: {e}");
        return ExitCode::FAILURE;
    }
    let calibrations_path = options.out_dir.join("calibrations.json");
    let calibrations_json = serde_json::to_string(&backend.calibrations().to_vec())
        .unwrap_or_else(|e| format!("\"serialisation failed: {e}\""));
    if let Err(e) = std::fs::write(&calibrations_path, &calibrations_json) {
        eprintln!("calibration persistence failed: {e}");
        return ExitCode::FAILURE;
    }

    if options.json {
        let apps: Vec<String> = backend
            .calibrations()
            .iter()
            .map(|c| {
                format!(
                    "{{\"app\":\"{}\",\"f\":{},\"fcon\":{},\"fred\":{},\"fored\":{},\"growth\":\"{}\",\"rmse\":{}}}",
                    c.app_params().name,
                    c.app_params().f,
                    c.app_params().split.fcon,
                    c.app_params().split.fred,
                    c.app_params().fored,
                    c.growth().label(),
                    c.fit_rmse(),
                )
            })
            .collect();
        println!(
            "{{\"experiment\":\"calibrate\",\"threads\":{:?},\"calibrations\":[{}],\"scenarios\":{},\"valid\":{},\"elapsed_seconds\":{},\"best_speedup\":{}}}",
            thread_counts,
            apps.join(","),
            result.stats.scenarios,
            result.stats.valid,
            result.stats.elapsed_seconds,
            top.first().map(|r| r.speedup.to_string()).unwrap_or_else(|| "null".to_string()),
        );
        return ExitCode::SUCCESS;
    }

    println!("measured-profile calibration — thread sweep {thread_counts:?}");
    let rows: Vec<TableRow> = backend.calibrations().iter().map(calibration_row).collect();
    println!("{}", render_table("calibrated parameters (measured on this host)", &rows, 4));

    println!(
        "design-space exploration — backend `{}`{}",
        backend.name(),
        if options.exact { " (exact measured growth)" } else { "" },
    );
    println!(
        "  swept {} scenarios ({} valid) on {} thread(s) in {:.3}s",
        result.stats.scenarios,
        result.stats.valid,
        result.stats.threads,
        result.stats.elapsed_seconds,
    );
    println!(
        "  exports: {} (JSON), {} (CSV), {} (calibrations)",
        options.out_dir.join("sweep.json").display(),
        options.out_dir.join("sweep.csv").display(),
        calibrations_path.display(),
    );
    println!();

    let top_rows: Vec<TableRow> = top
        .iter()
        .enumerate()
        .map(|(rank, record)| {
            record_row(format!("{:>2}. {}", rank + 1, scenario_label(&space, record)), record)
        })
        .collect();
    println!("{}", render_table("top designs by calibrated speedup", &top_rows, 2));

    let optima_rows: Vec<TableRow> =
        optima.iter().map(|o| record_row(format!("{}={}", o.axis, o.value), &o.record)).collect();
    println!("{}", render_table("per-axis optima", &optima_rows, 2));

    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_handles_all_flags() {
        let options = parse(&[
            "--threads".to_string(),
            "4".to_string(),
            "--quick".to_string(),
            "--exact".to_string(),
            "--top".to_string(),
            "3".to_string(),
        ])
        .unwrap();
        assert_eq!(options.threads, 4);
        assert!(options.quick);
        assert!(options.exact);
        assert_eq!(options.top_k, 3);
        assert!(parse(&["--bogus".to_string()]).is_err());
        assert!(parse(&["--threads".to_string()]).is_err());
        assert!(parse(&["--threads".to_string(), "0".to_string()]).is_err());
        assert!(parse(&["--threads".to_string(), "999999".to_string()]).is_err());
        assert!(parse(&["--top".to_string(), "0".to_string()]).is_err());
    }

    #[test]
    fn quick_pipeline_calibrates_all_four_workloads_and_sweeps() {
        // A miniature end-to-end run: tiny data, 1-2 threads, small space.
        let (cluster, hop) = (DatasetSpec::new(500, 3, 3, 7), DatasetSpec::new(600, 3, 4, 11));
        let mut kmeans_cfg = KMeansConfig { threshold: -1.0, max_iters: 5, ..Default::default() };
        kmeans_cfg.clusters = 3;
        let workloads = vec![
            ClusteringWorkload::kmeans(cluster.generate()).with_kmeans_config(kmeans_cfg),
            ClusteringWorkload::fuzzy(cluster.generate()),
            ClusteringWorkload::hop(hop.generate()),
            ClusteringWorkload::kdtree(hop.generate()),
        ];
        let calibrations = calibrate_jobs(&workloads, &[1, 2]).unwrap();
        assert_eq!(calibrations.len(), 4);
        let names: Vec<&str> = calibrations.iter().map(|c| c.app_params().name.as_str()).collect();
        assert_eq!(names, ["kmeans", "fuzzy", "hop", "kdtree"]);
        for calibration in &calibrations {
            let app = calibration.app_params();
            assert!(app.f > 0.0 && app.f < 1.0, "{}: f = {}", app.name, app.f);
        }

        let backend = MeasuredBackend::new(calibrations);
        let options = parse(&["--quick".to_string()]).unwrap();
        let space = build_space(&options, &backend);
        assert_eq!(space.apps().len(), 4);
        let result = Engine::new(2).sweep(&space, &backend, &SweepConfig::default());
        assert_eq!(result.records.len(), space.len());
        assert!(result.stats.valid > 0);
    }
}
