//! The `repro dse` subcommand: a large-scale design-space exploration.
//!
//! Sweeps every Table II application and Table III class over fine-grained
//! symmetric and asymmetric core grids, three chip budgets, four
//! reduction-overhead growth laws and three core performance models —
//! ≥ 200 000 scenarios — through the `mp-dse` engine on all available cores,
//! then reports the top designs, per-axis optima and the Pareto frontier of
//! speedup against core count, and exports the full sweep as JSON and CSV.
//!
//! The sweep runs twice: the second pass is answered entirely from the
//! memoisation cache and must reproduce the first pass bit-for-bit, which the
//! command verifies and reports. The cache is also persisted to the output
//! directory, so a repeated *process* run warm-starts from disk and hits the
//! cache immediately.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use mp_dse::prelude::*;
use mp_model::calibrate::{CalibratedParams, MeasuredRun};
use mp_model::growth::GrowthFunction;
use mp_model::params::AppParams;
use mp_model::perf::PerfModel;
use mp_model::topology::Topology;
use mp_profile::{render_table, TableRow};

use crate::alloc_track;

/// The `dse` flags that consume a value token. The `repro` binary's
/// subcommand scanner uses this to step over flag values when the flags
/// precede the subcommand name, so the list lives here next to `parse`.
pub const VALUE_FLAGS: &[&str] = &["--backend", "--out", "--top", "--threads", "--trace"];

/// Options of one `dse` invocation.
#[derive(Debug)]
struct Options {
    backend: String,
    out_dir: PathBuf,
    quick: bool,
    json: bool,
    profile: bool,
    force_scalar: bool,
    threads: Option<usize>,
    top_k: usize,
    trace: Option<PathBuf>,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        backend: "analytic".to_string(),
        out_dir: PathBuf::from("target/dse"),
        quick: false,
        json: false,
        profile: false,
        force_scalar: false,
        threads: None,
        top_k: 10,
        trace: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let arg = arg.as_str();
        if VALUE_FLAGS.contains(&arg) {
            // Value-taking flags are routed through VALUE_FLAGS so the
            // `repro` subcommand scanner (which must step over their values)
            // cannot drift out of sync: a flag handled here but missing from
            // the list would never reach this branch.
            let value = iter.next().ok_or_else(|| format!("{arg} needs a value"))?.clone();
            match arg {
                "--backend" => options.backend = value,
                "--out" => options.out_dir = PathBuf::from(value),
                "--top" => {
                    options.top_k = crate::cli::parse_count(arg, &value, 1, crate::cli::MAX_COUNT)?;
                }
                "--threads" => {
                    options.threads = Some(crate::cli::parse_parallelism(arg, &value)?);
                }
                "--trace" => options.trace = Some(PathBuf::from(value)),
                other => unreachable!("{other} is listed in VALUE_FLAGS but unhandled"),
            }
        } else {
            match arg {
                "--json" => options.json = true,
                "--quick" => options.quick = true,
                "--profile" => options.profile = true,
                "--force-scalar" => options.force_scalar = true,
                other => return Err(format!("unknown dse option `{other}`")),
            }
        }
    }
    Ok(options)
}

/// The sweep's application axis: Table III's eight synthetic classes plus the
/// three measured Table II applications.
fn applications() -> Vec<AppParams> {
    AppParams::paper_catalog()
}

/// Deterministic synthetic calibrations of the paper catalogue for the
/// `measured` backend: each application's parameters are converted into the
/// section times an ideal instrumented run would report at 1–16 threads
/// (linear merge growth) and re-fitted through [`CalibratedParams::fit`].
/// This exercises the full calibration-driven evaluation path — parameter
/// lookup, fitted growth, extended model — without running workloads, so the
/// `measured` throughput numbers are reproducible on any host.
pub fn synthetic_calibrations() -> Vec<CalibratedParams> {
    applications()
        .iter()
        .map(|app| {
            let s = app.serial_fraction();
            let runs: Vec<MeasuredRun> = [1usize, 2, 4, 8, 16]
                .iter()
                .map(|&p| {
                    MeasuredRun::new(
                        p,
                        app.f / p as f64,
                        s * app.split.fcon,
                        s * app.split.fred * (1.0 + app.fored * (p as f64 - 1.0)),
                    )
                })
                .collect();
            CalibratedParams::fit(&app.name, &runs).expect("catalogue calibrations fit")
        })
        .collect()
}

/// Build the exploration space. The full grid is ≥ 200 000 scenarios; the
/// quick grid (used by tests) is a few thousand.
/// The analytic exploration space of `repro dse` (the 214k-scenario
/// space in full mode), shared with `repro job --dse-space` so durable
/// jobs can run the headline warm-restart experiment over it.
pub fn experiment_space(quick: bool) -> ScenarioSpace {
    let mut options = parse(&[]).expect("defaults parse");
    options.quick = quick;
    build_space(&options)
}

fn build_space(options: &Options) -> ScenarioSpace {
    let (sym_points, budgets) =
        if options.quick { (48usize, vec![256.0]) } else { (512usize, vec![128.0, 256.0, 512.0]) };
    // Log-spaced per-core areas in [1, 128] BCE — valid under every budget.
    let max_r: f64 = 128.0;
    let sym = (0..sym_points)
        .map(move |i| max_r.powf(i as f64 / (sym_points.saturating_sub(1).max(1)) as f64));
    let pow2 = |limit: f64| {
        std::iter::successors(Some(1.0f64), move |r| (r * 2.0 <= limit).then_some(r * 2.0))
    };
    let mut space = ScenarioSpace::new()
        .with_apps(applications())
        .with_budgets(budgets)
        .clear_designs()
        .add_symmetric_grid(sym)
        .add_asymmetric_grid([1.0, 2.0, 4.0, 8.0, 16.0], pow2(128.0).skip(1))
        .with_growths(vec![
            GrowthFunction::Constant,
            GrowthFunction::Linear,
            GrowthFunction::Logarithmic,
            GrowthFunction::Superlinear(1.55),
        ])
        .with_perfs(vec![PerfModel::Pollack, PerfModel::Power(0.75), PerfModel::Linear]);
    if options.backend == "comm" {
        // The comm backend reads the growth axis as the reduction-computation
        // growth and explores the interconnect on the topology axis.
        space = space.with_topologies(vec![
            Topology::Mesh2D,
            Topology::Torus2D,
            Topology::Crossbar,
            Topology::Ideal,
        ]);
    }
    if options.backend == "sim" {
        // The simulator derives its own overhead growth and core performance,
        // so sweeping those axes would just repeat every (expensive)
        // simulation; its meaningful strategy axis is the merge
        // implementation. Its machines are also discrete (floor(budget / r)
        // cores), so the fractional log-spaced grid would simulate duplicate
        // machines under different labels — sweep integer core sizes instead.
        let sym_limit = if options.quick { 48usize } else { 128 };
        space = space
            .clear_designs()
            .add_symmetric_grid((1..=sym_limit).map(|r| r as f64))
            .add_asymmetric_grid([1.0, 2.0, 4.0, 8.0, 16.0], pow2(128.0).skip(1))
            .with_growths(vec![GrowthFunction::Linear])
            .with_perfs(vec![PerfModel::Pollack])
            .with_reductions(mp_par::ReductionStrategy::all().to_vec());
    }
    space
}

pub(crate) fn scenario_label(space: &ScenarioSpace, record: &EvalRecord) -> String {
    let s = space.scenario(record.index);
    let design = match s.design {
        ChipSpec::Symmetric { r } => format!("sym r={r:.2}"),
        ChipSpec::Asymmetric { r, rl } => format!("asym r={r:.0} rl={rl:.0}"),
    };
    let mut label = format!(
        "{} | {} | b={} | {} | {}",
        s.app.name,
        design,
        s.budget.total_bce(),
        s.growth.label(),
        s.perf.label(),
    );
    // The strategy axes only appear when they are actually swept, so rows
    // stay compact for the analytic backend but remain unambiguous for the
    // sim (reduction) and comm (topology) sweeps.
    if space.reductions().len() > 1 {
        label.push_str(&format!(" | {}", s.reduction.name()));
    }
    if space.topologies().len() > 1 {
        label.push_str(&format!(" | {:?}", s.topology));
    }
    label
}

pub(crate) fn record_row(label: String, record: &EvalRecord) -> TableRow {
    TableRow::new(label)
        .with("speedup", record.speedup)
        .with("cores", record.cores)
        .with("area", record.area)
}

/// Entry point of the `dse` subcommand.
pub fn run(args: &[String]) -> ExitCode {
    let options = match parse(args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            eprintln!("usage: repro dse [--backend analytic|comm|sim|measured] [--out DIR] [--top K] [--threads N] [--trace PATH] [--quick] [--json] [--profile] [--force-scalar]");
            return ExitCode::FAILURE;
        }
    };

    if options.force_scalar {
        // Pin the scalar reference kernels for this process — the A/B
        // baseline against the SIMD lane path (results are bit-identical by
        // contract; only throughput differs).
        mp_model::simd::set_forced_scalar(true);
    }

    let backend = match crate::cli::backend_by_name(&options.backend) {
        Ok(backend) => backend,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    // The calibrated application axis, derived straight from the same
    // deterministic calibrations the shared constructor parameterised the
    // backend with (no second backend build).
    let measured_apps = (options.backend == "measured").then(|| {
        synthetic_calibrations().iter().map(|c| c.app_params().clone()).collect::<Vec<_>>()
    });

    let mut space = build_space(&options);
    if let Some(apps) = measured_apps {
        // The calibrations supply both the application parameters and the
        // growth function, so the space sweeps the calibrated applications
        // and the growth axis collapses to a single label the backend
        // ignores anyway.
        space = space.with_apps(apps).with_growths(vec![GrowthFunction::Linear]);
    }
    let engine = match options.threads {
        Some(threads) => Engine::new(threads),
        None => Engine::with_all_cores(),
    };
    let config = SweepConfig::default();

    // Warm-start from a persisted cache if a previous run left one.
    let cache_path = options.out_dir.join(format!("cache-{}.json", options.backend));
    let mut warm_entries = 0usize;
    if let Ok(json) = std::fs::read_to_string(&cache_path) {
        match engine.cache().load_json(&json) {
            Ok(loaded) => warm_entries = loaded,
            Err(e) => eprintln!("ignoring stale cache at {}: {e}", cache_path.display()),
        }
    }

    // Profiling is opt-in per run: spans cost an allocation each, so the
    // recorder only arms when an export path was requested.
    if options.trace.is_some() {
        mp_obs::profile::Profiler::global().set_enabled(true);
    }

    let allocs_before_first = alloc_track::allocation_count();
    let first = engine.sweep(&space, backend.as_ref(), &config);
    let allocs_first = alloc_track::allocation_count() - allocs_before_first;

    // Second pass: must be answered from the cache and reproduce the first
    // pass bit-for-bit.
    let allocs_before_second = alloc_track::allocation_count();
    let second = engine.sweep(&space, backend.as_ref(), &config);
    let allocs_second = alloc_track::allocation_count() - allocs_before_second;
    let identical = first
        .records
        .iter()
        .zip(second.records.iter())
        .all(|(a, b)| a.index == b.index && a.speedup.to_bits() == b.speedup.to_bits());

    let top = top_k(&first.records, options.top_k);
    let optima = per_axis_optima(&space, &first.records);
    let frontier = pareto_frontier(&first.records, CostAxis::Cores);

    if let Some(trace_path) = &options.trace {
        // Both passes' spans (per-window batches, table builds, cached
        // re-sweep) in one timeline, viewable at chrome://tracing or Perfetto.
        let profiler = mp_obs::profile::Profiler::global();
        profiler.set_enabled(false);
        let spans = profiler.take();
        if let Some(parent) = trace_path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("trace export failed: cannot create {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
        if let Err(e) = std::fs::write(trace_path, mp_obs::profile::chrome_trace_json(&spans)) {
            eprintln!("trace export failed: {e}");
            return ExitCode::FAILURE;
        }
        if !options.json {
            println!("  trace: {} spans exported to {}", spans.len(), trace_path.display());
        }
    }

    if let Err(e) = export_sweep(&options.out_dir, &space, &first) {
        eprintln!("export failed: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&cache_path, engine.cache().save_json()) {
        eprintln!("cache persistence failed: {e}");
        return ExitCode::FAILURE;
    }

    let scenarios_per_second = first.stats.scenarios as f64 / first.stats.elapsed_seconds.max(1e-9);
    let cached_per_second = second.stats.scenarios as f64 / second.stats.elapsed_seconds.max(1e-9);

    if options.json {
        let profile_fields = if options.profile {
            format!(
                ",\"simd_kernel\":\"{}\",\"scenarios_per_second\":{},\"cached_scenarios_per_second\":{},\"allocations_first_pass\":{},\"allocations_cached_pass\":{},\"allocations_per_scenario\":{}",
                simd_kernel_label(),
                scenarios_per_second,
                cached_per_second,
                allocs_first,
                allocs_second,
                allocs_first as f64 / first.stats.scenarios.max(1) as f64,
            )
        } else {
            String::new()
        };
        println!(
            "{{\"experiment\":\"dse\",\"backend\":\"{}\",\"scenarios\":{},\"valid\":{},\"threads\":{},\"elapsed_seconds\":{},\"rescan_hits\":{},\"warm_entries\":{},\"identical\":{},\"frontier_size\":{},\"best_speedup\":{}{}}}",
            options.backend,
            first.stats.scenarios,
            first.stats.valid,
            first.stats.threads,
            first.stats.elapsed_seconds,
            second.stats.cache_hits,
            warm_entries,
            identical,
            frontier.len(),
            // JSON has no NaN: an empty top-k list emits null.
            top.first()
                .map(|r| r.speedup.to_string())
                .unwrap_or_else(|| "null".to_string()),
            profile_fields,
        );
        return if identical { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    println!("design-space exploration — backend `{}`", options.backend);
    println!(
        "  swept {} scenarios ({} valid) on {} thread(s) in {:.3}s ({:.0} scenarios/s)",
        first.stats.scenarios,
        first.stats.valid,
        first.stats.threads,
        first.stats.elapsed_seconds,
        first.stats.scenarios as f64 / first.stats.elapsed_seconds.max(1e-9),
    );
    println!(
        "  first pass: {} cache hits, {} misses{}",
        first.stats.cache_hits,
        first.stats.cache_misses,
        if warm_entries > 0 {
            format!(" (warm-started from {warm_entries} persisted entries)")
        } else {
            String::new()
        },
    );
    println!(
        "  repeat pass: {} cache hits, {} misses in {:.3}s — outputs bit-identical: {}",
        second.stats.cache_hits, second.stats.cache_misses, second.stats.elapsed_seconds, identical,
    );
    println!(
        "  exports: {} (JSON), {} (CSV), {} (cache)",
        options.out_dir.join("sweep.json").display(),
        options.out_dir.join("sweep.csv").display(),
        cache_path.display(),
    );
    if options.profile {
        println!();
        println!("  profile (throughput and heap traffic, {} kernels):", simd_kernel_label());
        println!(
            "    first pass:  {scenarios_per_second:>12.0} scenarios/s, {allocs_first} heap allocations ({:.4} per scenario)",
            allocs_first as f64 / first.stats.scenarios.max(1) as f64,
        );
        println!(
            "    cached pass: {cached_per_second:>12.0} scenarios/s, {allocs_second} heap allocations ({:.4} per scenario)",
            allocs_second as f64 / second.stats.scenarios.max(1) as f64,
        );
        if alloc_track::allocation_count() == 0 {
            println!("    (allocation counting unavailable: no counting allocator installed)");
        }
    }
    println!();

    let top_rows: Vec<TableRow> = top
        .iter()
        .enumerate()
        .map(|(rank, record)| {
            record_row(format!("{:>2}. {}", rank + 1, scenario_label(&space, record)), record)
        })
        .collect();
    println!("{}", render_table("top designs by speedup", &top_rows, 2));

    let optima_rows: Vec<TableRow> =
        optima.iter().map(|o| record_row(format!("{}={}", o.axis, o.value), &o.record)).collect();
    println!("{}", render_table("per-axis optima", &optima_rows, 2));

    let frontier_rows: Vec<TableRow> =
        frontier.iter().map(|record| record_row(scenario_label(&space, record), record)).collect();
    println!(
        "{}",
        render_table(
            &format!("Pareto frontier (speedup vs cores, {} points)", frontier.len()),
            &frontier_rows,
            2,
        )
    );

    if identical {
        ExitCode::SUCCESS
    } else {
        eprintln!("cached re-sweep diverged from the first pass");
        ExitCode::FAILURE
    }
}

/// Which evaluation kernel the sweep actually ran with, for profile output
/// (`avx2` on hosts with the lanes, `scalar` when absent or forced off).
fn simd_kernel_label() -> &'static str {
    match mp_model::simd::level() {
        mp_model::simd::SimdLevel::Avx2 => "avx2",
        mp_model::simd::SimdLevel::Scalar => "scalar",
    }
}

/// Export a sweep to `dir/sweep.{json,csv}`.
pub fn export_sweep(
    dir: &Path,
    space: &ScenarioSpace,
    result: &SweepResult,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut json = std::io::BufWriter::new(std::fs::File::create(dir.join("sweep.json"))?);
    write_json(&mut json, space, &result.records, &result.stats)?;
    json.flush()?;
    let mut csv = std::io::BufWriter::new(std::fs::File::create(dir.join("sweep.csv"))?);
    write_csv(&mut csv, space, &result.records)?;
    csv.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_space_exceeds_one_hundred_thousand_scenarios() {
        let options = parse(&[]).unwrap();
        let space = build_space(&options);
        assert!(space.len() >= 100_000, "got {}", space.len());
    }

    #[test]
    fn quick_space_is_small_but_complete() {
        let options = parse(&["--quick".to_string()]).unwrap();
        let space = build_space(&options);
        assert!(space.len() < 100_000);
        assert!(space.len() > 1_000);
        let engine = Engine::new(1);
        let result = engine.sweep(&space, &AnalyticBackend, &SweepConfig::default());
        // Every scenario of the quick grid fits its budget.
        assert_eq!(result.stats.valid, space.len());
    }

    #[test]
    fn parse_rejects_unknown_options() {
        assert!(parse(&["--bogus".to_string()]).is_err());
        assert!(parse(&["--backend".to_string()]).is_err());
        let options =
            parse(&["--backend".to_string(), "sim".to_string(), "--quick".to_string()]).unwrap();
        assert_eq!(options.backend, "sim");
        assert!(options.quick);
        assert!(options.trace.is_none());
        let options = parse(&["--trace".to_string(), "target/trace.json".to_string()]).unwrap();
        assert_eq!(options.trace.as_deref(), Some(Path::new("target/trace.json")));
    }

    #[test]
    fn parse_rejects_zero_and_oversized_counts() {
        let args = |flag: &str, value: &str| vec![flag.to_string(), value.to_string()];
        let error = parse(&args("--threads", "0")).unwrap_err();
        assert!(error.contains("--threads") && error.contains("at least 1"), "{error}");
        let error = parse(&args("--threads", "1000000")).unwrap_err();
        assert!(error.contains("at most"), "{error}");
        let error = parse(&args("--top", "0")).unwrap_err();
        assert!(error.contains("--top") && error.contains("at least 1"), "{error}");
        // usize overflow surfaces as a clear integer error, not a panic.
        let error = parse(&args("--top", "18446744073709551616")).unwrap_err();
        assert!(error.contains("integer"), "{error}");
    }
}
