//! The `repro job` subcommand: drive durable sweep jobs on a running
//! `repro serve`.
//!
//! Four actions mirror the protocol's job verbs:
//!
//! * `submit` — register the load-generator space ([`load_space`]; or,
//!   with `--dse-space`, the full `repro dse` exploration space) as a
//!   durable background sweep, printing the job id and initial snapshot.
//!   `--chunk` sizes the runner windows, `--checkpoint-every` the
//!   checkpoint cadence in completed windows.
//! * `status` / `cancel` / `resume` — inspect, gracefully stop or
//!   re-queue a job by `--id`.
//!
//! `--wait SECS` (on `submit` and `resume`) polls until the job settles;
//! `--verify` then fetches the swept records with a normal (warm) sweep
//! and checks them **bit-identical** against a direct local
//! `Engine::sweep` of the same space — the CI crash-recovery drill's
//! parity gate. The verification fetch goes through the shared
//! [`RetryPolicy`], so a server still draining job windows answers when
//! it can rather than failing the check.
//!
//! [`load_space`]: crate::load_cmd::load_space

use std::process::ExitCode;
use std::time::Duration;

use mp_dse::prelude::*;
use mp_serve::prelude::*;

use crate::cli;

/// The `job` flags that consume a value token (see
/// [`crate::dse_cmd::VALUE_FLAGS`] for why this lives next to `parse`).
pub const VALUE_FLAGS: &[&str] =
    &["--addr", "--socket", "--backend", "--chunk", "--checkpoint-every", "--id", "--wait"];

/// What one `job` invocation asks for.
struct Options {
    action: Action,
    endpoint: Endpoint,
    backend: String,
    quick: bool,
    /// Sweep the `repro dse` exploration space instead of the
    /// load-generator space (the EXPERIMENTS.md warm-restart drill).
    dse_space: bool,
    chunk: usize,
    checkpoint_every: usize,
    id: Option<String>,
    /// Poll until settled for this long after submit/resume.
    wait: Option<Duration>,
    /// After a waited job completes, check warm-fetched records against a
    /// local reference sweep.
    verify: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Action {
    Submit,
    Status,
    Cancel,
    Resume,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut iter = args.iter();
    let action = match iter.next().map(String::as_str) {
        Some("submit") => Action::Submit,
        Some("status") => Action::Status,
        Some("cancel") => Action::Cancel,
        Some("resume") => Action::Resume,
        Some(other) => return Err(format!("unknown job action `{other}`")),
        None => return Err("job needs an action: submit, status, cancel or resume".to_string()),
    };
    let mut options = Options {
        action,
        endpoint: Endpoint::Tcp("127.0.0.1:7077".to_string()),
        backend: "analytic".to_string(),
        quick: false,
        dse_space: false,
        chunk: 0,
        checkpoint_every: 0,
        id: None,
        wait: None,
        verify: false,
    };
    while let Some(arg) = iter.next() {
        let arg = arg.as_str();
        if VALUE_FLAGS.contains(&arg) {
            let value = iter.next().ok_or_else(|| format!("{arg} needs a value"))?.clone();
            match arg {
                "--addr" => options.endpoint = Endpoint::Tcp(value),
                "--socket" => options.endpoint = Endpoint::Unix(value.into()),
                "--backend" => options.backend = value,
                "--chunk" => options.chunk = cli::parse_count(arg, &value, 1, cli::MAX_COUNT)?,
                "--checkpoint-every" => {
                    options.checkpoint_every = cli::parse_count(arg, &value, 1, cli::MAX_COUNT)?;
                }
                "--id" => options.id = Some(value),
                "--wait" => {
                    let secs = value
                        .parse::<f64>()
                        .ok()
                        .filter(|s| *s > 0.0 && s.is_finite())
                        .ok_or_else(|| format!("{arg} needs positive seconds, got `{value}`"))?;
                    options.wait = Some(Duration::from_secs_f64(secs));
                }
                other => unreachable!("{other} is listed in VALUE_FLAGS but unhandled"),
            }
        } else {
            match arg {
                "--quick" => options.quick = true,
                "--dse-space" => options.dse_space = true,
                "--verify" => options.verify = true,
                other => return Err(format!("unknown job option `{other}`")),
            }
        }
    }
    match options.action {
        Action::Submit => {}
        _ if options.id.is_none() => return Err("status, cancel and resume need --id".to_string()),
        _ => {}
    }
    if options.verify && options.wait.is_none() {
        return Err("--verify needs --wait (records are checked after completion)".to_string());
    }
    Ok(options)
}

fn print_snapshot(snapshot: &JobSnapshot) {
    let reason = if snapshot.reason.is_empty() {
        String::new()
    } else {
        format!(" reason={:?}", snapshot.reason)
    };
    println!(
        "job {} state={} windows={}/{} scenarios={}/{} retries={} checkpoints={} \
         window={} checkpoint-every={} fingerprint={}{reason}",
        snapshot.id,
        snapshot.state,
        snapshot.windows_completed,
        snapshot.windows_total,
        snapshot.scenarios_completed,
        snapshot.end - snapshot.start,
        snapshot.retries,
        snapshot.checkpoints,
        snapshot.window,
        snapshot.checkpoint_every,
        snapshot.fingerprint,
    );
}

/// Fetch the job's records with a normal (warm) sweep through the shared
/// retry policy and compare them bit-for-bit against a direct local
/// engine sweep — the crash-recovery drill's parity gate.
fn verify_records(
    client: &mut Client,
    space: &ScenarioSpace,
    backend: &str,
) -> Result<bool, String> {
    let request = Request::Sweep {
        space: SpaceSpec::Explicit(space.clone()),
        start: 0,
        end: space.len(),
        chunk: 0,
    };
    let policy = RetryPolicy::backoff_ms(1, 250);
    let outcome = client
        .call_with_retry(&request, &policy, space.len() as u64)
        .map_err(|e| format!("verification sweep: {e}"))?;
    if outcome.exhausted {
        return Err("verification sweep: server still busy after the retry budget".to_string());
    }
    let (records, _stats) = mp_serve::client::assemble_sweep(outcome.responses, &(0..space.len()))
        .map_err(|e| format!("verification sweep: {e}"))?;
    let backend = cli::backend_by_name(backend)?;
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let reference = Engine::new(threads).sweep(space, &backend, &SweepConfig::default());
    Ok(crate::load_cmd::records_identical(&records, &reference.records))
}

/// Entry point of the `job` subcommand.
pub fn run(args: &[String]) -> ExitCode {
    let options = match parse(args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            eprintln!(
                "usage: repro job submit [--addr HOST:PORT | --socket PATH] \
                 [--backend analytic|comm|sim|measured] [--quick] [--dse-space] [--chunk N] \
                 [--checkpoint-every K] [--wait SECS] [--verify]\n\
                 \x20      repro job status|cancel|resume --id ID [--wait SECS] [--verify]"
            );
            return ExitCode::FAILURE;
        }
    };
    match drive(&options) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

fn drive(options: &Options) -> Result<ExitCode, String> {
    let mut client = Client::connect(&options.endpoint)
        .map_err(|e| format!("connect {}: {e}", options.endpoint))?;
    let backend = cli::backend_by_name(&options.backend)?;
    let space = if options.dse_space {
        crate::dse_cmd::experiment_space(options.quick)
    } else {
        crate::load_cmd::load_space(options.quick, &*backend)
    };

    let snapshot = match options.action {
        Action::Submit => client
            .job_submit(&space, None, options.chunk, options.checkpoint_every)
            .map_err(|e| format!("submit: {e}"))?,
        Action::Status => {
            let id = options.id.as_deref().expect("checked in parse");
            client.job_status(id).map_err(|e| format!("status: {e}"))?
        }
        Action::Cancel => {
            let id = options.id.as_deref().expect("checked in parse");
            client.job_cancel(id).map_err(|e| format!("cancel: {e}"))?
        }
        Action::Resume => {
            let id = options.id.as_deref().expect("checked in parse");
            client.job_resume(id).map_err(|e| format!("resume: {e}"))?
        }
    };
    print_snapshot(&snapshot);

    let Some(timeout) = options.wait else { return Ok(ExitCode::SUCCESS) };
    let settled = client.job_wait(&snapshot.id, timeout).map_err(|e| format!("wait: {e}"))?;
    print_snapshot(&settled);
    if settled.state != "completed" {
        return Err(format!("job {} settled as `{}`, not completed", settled.id, settled.state));
    }
    if options.verify {
        if verify_records(&mut client, &space, &options.backend)? {
            println!("job {}: records bit-identical to the local reference sweep", settled.id);
        } else {
            return Err(format!(
                "job {}: records differ from the local reference sweep",
                settled.id
            ));
        }
    }
    Ok(ExitCode::SUCCESS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_covers_actions_flags_and_requirements() {
        let submit = parse(&s(&[
            "submit",
            "--quick",
            "--chunk",
            "4096",
            "--checkpoint-every",
            "4",
            "--wait",
            "30",
            "--verify",
        ]))
        .unwrap();
        assert!(matches!(submit.action, Action::Submit));
        assert!(submit.quick && submit.verify);
        assert_eq!(submit.chunk, 4096);
        assert_eq!(submit.checkpoint_every, 4);
        assert_eq!(submit.wait, Some(Duration::from_secs(30)));

        let status = parse(&s(&["status", "--id", "j00001"])).unwrap();
        assert!(matches!(status.action, Action::Status));
        assert_eq!(status.id.as_deref(), Some("j00001"));

        assert!(parse(&s(&["status"])).is_err(), "status needs --id");
        assert!(parse(&s(&["cancel"])).is_err(), "cancel needs --id");
        assert!(parse(&s(&["resume"])).is_err(), "resume needs --id");
        assert!(parse(&s(&["submit", "--verify"])).is_err(), "--verify needs --wait");
        assert!(parse(&s(&["submit", "--wait", "0"])).is_err());
        assert!(parse(&s(&["submit", "--chunk", "0"])).is_err());
        assert!(parse(&s(&["submit", "--dse-space"])).unwrap().dse_space);
        assert!(parse(&s(&["frobnicate"])).is_err());
        assert!(parse(&s(&[])).is_err());
    }
}
