//! The `repro load` subcommand: a closed-loop load generator for `repro
//! serve`.
//!
//! Drives N concurrent clients (default 16) against a running sweep service
//! for two passes — `cold`, then `warm` — of mixed queries (full sweeps,
//! index-range sweeps, top-k, Pareto), and reports queries/s, tail latency
//! percentiles and the per-pass cache hit rate. Every response is checked
//! **bit-identical** against a direct local `Engine::sweep` of the same
//! space with the same backend, so the run doubles as a differential test;
//! the command exits non-zero on any parity failure, or when the warm pass's
//! hit rate is not above 90%.
//!
//! `--spawn` makes the command self-contained: it launches `repro serve` as
//! a child process on a free port, waits for its readiness line, runs the
//! load, then shuts the child down — this is what the CI smoke step runs.

use std::io::BufRead;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use mp_dse::backend::EvalBackend;
use mp_dse::prelude::*;
use mp_model::params::AppClass;
use mp_serve::prelude::*;

use crate::cli;

/// The `load` flags that consume a value token (see
/// [`crate::dse_cmd::VALUE_FLAGS`] for why this lives next to `parse`).
pub const VALUE_FLAGS: &[&str] =
    &["--addr", "--socket", "--clients", "--requests", "--shards", "--backend", "--chunk"];

#[derive(Debug)]
struct Options {
    endpoint: Endpoint,
    endpoint_explicit: bool,
    clients: usize,
    requests: usize,
    quick: bool,
    json: bool,
    spawn: bool,
    shards: usize,
    backend: String,
    shutdown: bool,
    chunk: usize,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        endpoint: Endpoint::Tcp("127.0.0.1:7077".to_string()),
        endpoint_explicit: false,
        clients: 16,
        requests: 6,
        quick: false,
        json: false,
        spawn: false,
        shards: 4,
        backend: "analytic".to_string(),
        shutdown: false,
        chunk: 0,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let arg = arg.as_str();
        if VALUE_FLAGS.contains(&arg) {
            let value = iter.next().ok_or_else(|| format!("{arg} needs a value"))?.clone();
            match arg {
                "--addr" => {
                    options.endpoint = Endpoint::Tcp(value);
                    options.endpoint_explicit = true;
                }
                "--socket" => {
                    options.endpoint = Endpoint::Unix(value.into());
                    options.endpoint_explicit = true;
                }
                "--clients" => options.clients = cli::parse_parallelism(arg, &value)?,
                "--requests" => {
                    options.requests = cli::parse_count(arg, &value, 1, cli::MAX_COUNT)?;
                }
                "--shards" => options.shards = cli::parse_parallelism(arg, &value)?,
                "--backend" => options.backend = value,
                "--chunk" => options.chunk = cli::parse_count(arg, &value, 1, cli::MAX_COUNT)?,
                other => unreachable!("{other} is listed in VALUE_FLAGS but unhandled"),
            }
        } else {
            match arg {
                "--quick" => options.quick = true,
                "--json" => options.json = true,
                "--spawn" => options.spawn = true,
                "--shutdown" => options.shutdown = true,
                other => return Err(format!("unknown load option `{other}`")),
            }
        }
    }
    if options.spawn && options.endpoint_explicit {
        return Err(
            "--spawn starts its own server on a free local port and cannot be combined with \
             --addr or --socket (drop --spawn to load an existing server)"
                .to_string(),
        );
    }
    Ok(options)
}

/// The query space the generator drives: Table III's classes over symmetric
/// and asymmetric grids under two growth laws. Matches what an interactive
/// DSE client would ask, and is small enough that the local reference sweep
/// stays cheap. The `measured` backend answers for its calibrated
/// applications instead.
pub fn load_space(quick: bool, backend: &dyn EvalBackend) -> ScenarioSpace {
    let sym_points = if quick { 96usize } else { 384 };
    let max_r: f64 = 128.0;
    let sym = (0..sym_points)
        .map(move |i| max_r.powf(i as f64 / (sym_points.saturating_sub(1).max(1)) as f64));
    let pow2 = |limit: f64| {
        std::iter::successors(Some(1.0f64), move |r| (r * 2.0 <= limit).then_some(r * 2.0))
    };
    let apps = if backend.name() == "measured" {
        // Straight from the calibrations (no second backend build).
        crate::dse_cmd::synthetic_calibrations().iter().map(|c| c.app_params().clone()).collect()
    } else {
        AppClass::table3_all().into_iter().map(|c| c.params()).collect()
    };
    ScenarioSpace::new()
        .with_apps(apps)
        .clear_designs()
        .add_symmetric_grid(sym)
        .add_asymmetric_grid([1.0, 4.0], pow2(128.0).skip(1))
        .with_growths(vec![
            mp_model::growth::GrowthFunction::Linear,
            mp_model::growth::GrowthFunction::Logarithmic,
        ])
}

/// Bitwise record-list equality (index, speedup, cores, area).
fn records_identical(a: &[EvalRecord], b: &[EvalRecord]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b.iter()).all(|(x, y)| {
            x.index == y.index
                && x.speedup.to_bits() == y.speedup.to_bits()
                && x.cores.to_bits() == y.cores.to_bits()
                && x.area.to_bits() == y.area.to_bits()
        })
}

/// Latency percentile (sorted input, fraction in `[0, 1]`).
fn percentile(sorted: &[f64], fraction: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * fraction).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Outcome of one load pass.
struct PassReport {
    name: &'static str,
    requests: usize,
    elapsed_seconds: f64,
    queries_per_second: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    parity_failures: usize,
    cache_hits: u64,
    cache_misses: u64,
    hit_rate: f64,
}

impl PassReport {
    fn json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"requests\":{},\"elapsed_seconds\":{},\"queries_per_second\":{},\"p50_ms\":{},\"p95_ms\":{},\"p99_ms\":{},\"max_ms\":{},\"parity_failures\":{},\"cache_hits\":{},\"cache_misses\":{},\"hit_rate\":{}}}",
            self.name,
            self.requests,
            self.elapsed_seconds,
            self.queries_per_second,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.max_ms,
            self.parity_failures,
            self.cache_hits,
            self.cache_misses,
            self.hit_rate,
        )
    }
}

/// The local ground truth every response is compared against.
struct Reference {
    space: ScenarioSpace,
    records: Vec<EvalRecord>,
    top: Vec<EvalRecord>,
    frontier_cores: Vec<EvalRecord>,
    frontier_area: Vec<EvalRecord>,
}

/// Run one pass of `clients × requests` mixed queries; returns latencies and
/// the parity failure count.
fn run_pass(
    endpoint: &Endpoint,
    reference: &Reference,
    clients: usize,
    requests: usize,
    chunk: usize,
) -> Result<(Vec<f64>, usize), String> {
    let failures = std::sync::atomic::AtomicUsize::new(0);
    let latencies = std::sync::Mutex::new(Vec::with_capacity(clients * requests));
    let n = reference.space.len();
    std::thread::scope(|scope| -> Result<(), String> {
        let mut handles = Vec::with_capacity(clients);
        for client_index in 0..clients {
            let failures = &failures;
            let latencies = &latencies;
            handles.push(scope.spawn(move || -> Result<(), String> {
                let mut client = Client::connect(endpoint)
                    .map_err(|e| format!("client {client_index}: connect failed: {e}"))?;
                let mut local: Vec<f64> = Vec::with_capacity(requests);
                for request in 0..requests {
                    let started = Instant::now();
                    let ok = match request % 3 {
                        0 => {
                            let (records, stats) = client
                                .sweep(&reference.space, None, chunk)
                                .map_err(|e| format!("client {client_index}: sweep: {e}"))?;
                            stats.scenarios == n && records_identical(&records, &reference.records)
                        }
                        1 => {
                            // A deterministic per-(client, request) window, so
                            // reruns are reproducible and windows differ.
                            let start = (client_index * 7919 + request * 104_729) % n;
                            let end = (start + n / 4 + 1).min(n);
                            let (records, _) = client
                                .sweep(&reference.space, Some(start..end), chunk)
                                .map_err(|e| format!("client {client_index}: range sweep: {e}"))?;
                            records_identical(&records, &reference.records[start..end])
                        }
                        _ => {
                            if client_index % 2 == 0 {
                                let top = client
                                    .top_k(&reference.space, 10)
                                    .map_err(|e| format!("client {client_index}: top_k: {e}"))?;
                                records_identical(&top, &reference.top)
                            } else {
                                let cost = if request % 2 == 0 {
                                    (CostAxis::Cores, &reference.frontier_cores)
                                } else {
                                    (CostAxis::Area, &reference.frontier_area)
                                };
                                let frontier = client
                                    .pareto(&reference.space, cost.0)
                                    .map_err(|e| format!("client {client_index}: pareto: {e}"))?;
                                records_identical(&frontier, cost.1)
                            }
                        }
                    };
                    local.push(started.elapsed().as_secs_f64());
                    if !ok {
                        failures.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
                latencies.lock().unwrap_or_else(|e| e.into_inner()).extend(local);
                Ok(())
            }));
        }
        for handle in handles {
            handle.join().map_err(|_| "a load client panicked".to_string())??;
        }
        Ok(())
    })?;
    let latencies = latencies.into_inner().unwrap_or_else(|e| e.into_inner());
    Ok((latencies, failures.into_inner()))
}

/// Spawn `repro serve` as a child on a free port and wait for its readiness
/// line. Returns the child and the endpoint it listens on.
fn spawn_server(options: &Options) -> Result<(std::process::Child, Endpoint), String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate repro binary: {e}"))?;
    let mut child = std::process::Command::new(exe)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--shards",
            &options.shards.to_string(),
            "--backend",
            &options.backend,
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .map_err(|e| format!("failed to spawn repro serve: {e}"))?;
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        let read = reader.read_line(&mut line).map_err(|e| {
            let _ = child.kill();
            format!("reading serve readiness line failed: {e}")
        })?;
        if read == 0 {
            let _ = child.kill();
            return Err("repro serve exited before becoming ready".to_string());
        }
        if let Some(rest) = line.split("listening on tcp://").nth(1) {
            let addr = rest.split_whitespace().next().unwrap_or("").to_string();
            if addr.is_empty() {
                let _ = child.kill();
                return Err(format!("malformed readiness line: {line}"));
            }
            // Keep draining the child's stdout so its final shutdown print
            // can never block on a full pipe.
            std::thread::spawn(move || {
                let mut sink = String::new();
                while matches!(reader.read_line(&mut sink), Ok(read) if read > 0) {
                    sink.clear();
                }
            });
            return Ok((child, Endpoint::Tcp(addr)));
        }
    }
}

/// Entry point of the `load` subcommand.
pub fn run(args: &[String]) -> ExitCode {
    let options = match parse(args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            eprintln!(
                "usage: repro load [--addr HOST:PORT | --socket PATH] [--clients N] [--requests N] \
                 [--backend analytic|comm|sim|measured] [--chunk N] [--shards N (with --spawn)] \
                 [--quick] [--json] [--spawn] [--shutdown]"
            );
            return ExitCode::FAILURE;
        }
    };

    // The local reference backend — by construction identical to what
    // `repro serve` runs for the same name (one shared constructor).
    let backend = match cli::backend_by_name(&options.backend) {
        Ok(backend) => backend,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let mut child = None;
    let endpoint = if options.spawn {
        match spawn_server(&options) {
            Ok((spawned, endpoint)) => {
                child = Some(spawned);
                endpoint
            }
            Err(message) => {
                eprintln!("{message}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        options.endpoint.clone()
    };

    let outcome = drive(&options, backend.as_ref(), &endpoint);

    // Always reap a spawned server, even after a failed run.
    if let Some(mut child) = child {
        let shutdown_sent = outcome.is_ok() || {
            // Best-effort shutdown after a failure too.
            Client::connect(&endpoint).map(|mut c| c.shutdown().is_ok()).unwrap_or(false)
        };
        if !shutdown_sent {
            let _ = child.kill();
        }
        let _ = child.wait();
    }

    match outcome {
        Ok(ok) => {
            if ok {
                ExitCode::SUCCESS
            } else {
                eprintln!("load run failed its acceptance checks (parity and >90% warm hit rate)");
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

/// The measured load run proper; returns whether the acceptance checks held.
fn drive(
    options: &Options,
    backend: &(dyn EvalBackend + Send + Sync),
    endpoint: &Endpoint,
) -> Result<bool, String> {
    // Wait for the server (freshly spawned ones need a moment to bind).
    let mut control = None;
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    while control.is_none() {
        match Client::connect(endpoint) {
            Ok(client) => control = Some(client),
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            Err(e) => return Err(format!("cannot reach {endpoint}: {e}")),
        }
    }
    let mut control = control.expect("connected above");
    let version = control.ping().map_err(|e| format!("ping failed: {e}"))?;

    // Local ground truth: one direct engine sweep of the same space.
    let space = load_space(options.quick, backend);
    let direct = Engine::with_all_cores().sweep(&space, backend, &SweepConfig::default());
    let reference = Arc::new(Reference {
        top: top_k(&direct.records, 10),
        frontier_cores: pareto_frontier(&direct.records, CostAxis::Cores),
        frontier_area: pareto_frontier(&direct.records, CostAxis::Area),
        records: direct.records,
        space,
    });

    let mut reports = Vec::with_capacity(2);
    let mut parity_failures = 0usize;
    for pass in ["cold", "warm"] {
        let before = control.stats().map_err(|e| format!("stats failed: {e}"))?.cache_totals();
        let started = Instant::now();
        let (mut latencies, failures) =
            run_pass(endpoint, &reference, options.clients, options.requests, options.chunk)?;
        let elapsed = started.elapsed().as_secs_f64();
        let after = control.stats().map_err(|e| format!("stats failed: {e}"))?.cache_totals();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let requests = options.clients * options.requests;
        let hits = after.hits - before.hits;
        let misses = after.misses - before.misses;
        parity_failures += failures;
        reports.push(PassReport {
            name: pass,
            requests,
            elapsed_seconds: elapsed,
            queries_per_second: requests as f64 / elapsed.max(1e-9),
            p50_ms: percentile(&latencies, 0.50) * 1e3,
            p95_ms: percentile(&latencies, 0.95) * 1e3,
            p99_ms: percentile(&latencies, 0.99) * 1e3,
            max_ms: latencies.last().copied().unwrap_or(0.0) * 1e3,
            parity_failures: failures,
            cache_hits: hits,
            cache_misses: misses,
            hit_rate: if hits + misses == 0 { 0.0 } else { hits as f64 / (hits + misses) as f64 },
        });
    }

    let warm = reports.last().expect("two passes ran");
    let warm_hit_rate = warm.hit_rate;
    let nonzero_hits = warm.cache_hits > 0;
    let ok = parity_failures == 0 && warm_hit_rate > 0.9 && nonzero_hits;

    if options.shutdown || options.spawn {
        control.shutdown().map_err(|e| format!("shutdown failed: {e}"))?;
    }

    if options.json {
        let passes: Vec<String> = reports.iter().map(PassReport::json).collect();
        println!(
            "{{\"experiment\":\"load\",\"endpoint\":\"{endpoint}\",\"protocol\":\"{version}\",\"backend\":\"{}\",\"clients\":{},\"requests_per_client\":{},\"scenarios_per_sweep\":{},\"passes\":[{}],\"parity_failures\":{parity_failures},\"warm_hit_rate\":{warm_hit_rate},\"ok\":{ok}}}",
            backend.name(),
            options.clients,
            options.requests,
            reference.space.len(),
            passes.join(","),
        );
    } else {
        println!("closed-loop load against {endpoint} ({version}, backend `{}`)", backend.name());
        println!(
            "  {} clients x {} requests/pass over a {}-scenario space",
            options.clients,
            options.requests,
            reference.space.len(),
        );
        for report in &reports {
            println!(
                "  {:<4} pass: {:>7.1} queries/s | latency p50 {:>7.1}ms p95 {:>7.1}ms p99 {:>7.1}ms max {:>7.1}ms | cache {} hits / {} misses ({:.1}% hit rate)",
                report.name,
                report.queries_per_second,
                report.p50_ms,
                report.p95_ms,
                report.p99_ms,
                report.max_ms,
                report.cache_hits,
                report.cache_misses,
                report.hit_rate * 100.0,
            );
        }
        println!(
            "  parity: {} | warm hit rate {:.1}% ({}) ",
            if parity_failures == 0 {
                "every response bit-identical to Engine::sweep".to_string()
            } else {
                format!("{parity_failures} FAILURES")
            },
            warm_hit_rate * 100.0,
            if ok { "PASS" } else { "FAIL" },
        );
    }
    Ok(ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_sustain_sixteen_clients_and_reject_bad_counts() {
        let options = parse(&[]).unwrap();
        assert_eq!(options.clients, 16, "acceptance floor: >= 16 concurrent clients");
        assert_eq!(options.shards, 4);
        assert!(parse(&["--clients".to_string(), "0".to_string()]).is_err());
        assert!(parse(&["--requests".to_string(), "0".to_string()]).is_err());
        assert!(parse(&["--chunk".to_string(), "0".to_string()]).is_err());
        assert!(parse(&["--bogus".to_string()]).is_err());
        assert!(cli::backend_by_name("nope").is_err());
        let conflict =
            parse(&["--spawn".to_string(), "--addr".to_string(), "1.2.3.4:1".to_string()])
                .unwrap_err();
        assert!(conflict.contains("cannot be combined"), "{conflict}");
    }

    #[test]
    fn percentiles_are_monotone() {
        let sorted: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 0.0), 0.0);
        assert_eq!(percentile(&sorted, 1.0), 99.0);
        assert!(percentile(&sorted, 0.5) <= percentile(&sorted, 0.95));
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn load_space_matches_the_measured_backend_catalogue() {
        let measured =
            mp_dse::backend::MeasuredBackend::new(crate::dse_cmd::synthetic_calibrations());
        let space = load_space(true, &measured);
        let result = Engine::new(1).sweep(&space, &measured, &SweepConfig::default());
        assert!(result.stats.valid > 0, "measured load space must resolve calibrations");
        let analytic_space = load_space(true, &AnalyticBackend);
        assert!(analytic_space.len() > 1000);
    }
}
