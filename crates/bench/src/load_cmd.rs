//! The `repro load` subcommand: a closed-loop load generator for `repro
//! serve`.
//!
//! Drives N concurrent connections (default 16) against a running sweep
//! service for two passes — `cold`, then `warm` — of mixed queries (full
//! sweeps, index-range sweeps, top-k, Pareto), and reports queries/s, tail
//! latency percentiles, a log-scale latency histogram and the per-pass cache
//! hit rate. Every response is checked **bit-identical** against a direct
//! local `Engine::sweep` of the same space with the same backend, so the run
//! doubles as a differential test; the command exits non-zero on any parity
//! failure, or when the warm pass's hit rate is not above 90%.
//!
//! `--pipelined` switches each connection to the v2 protocol's pipelined
//! mode: `--depth` requests are written back-to-back before any response is
//! read, exercising the server's ordered in-flight queue. Connections are
//! multiplexed over a bounded worker-thread pool, so `--clients 2048` costs
//! the generator 64 threads, not 2048 — the *server* is the side that has to
//! scale. `busy` admission rejections are retried (and counted) rather than
//! failed.
//!
//! `--spawn` makes the command self-contained: it launches `repro serve` as
//! a child process on a free port, waits for its readiness line, runs the
//! load, then shuts the child down — this is what the CI smoke step runs.
//!
//! `--overlap` switches the workload to the planner's worst-friendly case:
//! every client issues the *same* full sweep concurrently, so in-flight
//! windows coalesce. The report then carries per-pass planner deltas read
//! from the server's own metrics — scenarios evaluated per distinct
//! scenario, coalesced requests, shared scenarios — and the run fails
//! unless coalescing actually happened (pair with `--no-coalesce`, which
//! spawns the server with its planner's coalescing table disabled, to
//! measure the uncoalesced baseline).
//!
//! `--skew` is the work-stealing scheduler's counterpart: the query mix
//! concentrates on the *hot band* `0..n/shards` — the scenario prefix that
//! static banding homes entirely on shard 0 — with only an occasional full
//! sweep. Under static bands one shard does nearly all the work while the
//! rest idle; with stealing enabled the idle shards' workers drain shard
//! 0's queue. The report reads the `sched_units_stolen` delta from the
//! server's metrics and (with stealing on) the run fails unless steals were
//! actually observed. Pair with `--no-steal` for the pinned baseline the
//! scheduler benchmark compares against, and `--fault-latency-ms` to give
//! every evaluation a deterministic service time so the throughput contrast
//! is visible even on small hosts.

use std::io::BufRead;
use std::ops::Range;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use mp_dse::backend::EvalBackend;
use mp_dse::prelude::*;
use mp_model::params::AppClass;
use mp_obs::hist::{percentile_of_sorted, HistogramSnapshot, LATENCY_BOUNDS_MS};
use mp_serve::prelude::*;

use crate::{alloc_track, cli};

/// The `load` flags that consume a value token (see
/// [`crate::dse_cmd::VALUE_FLAGS`] for why this lives next to `parse`).
pub const VALUE_FLAGS: &[&str] = &[
    "--addr",
    "--socket",
    "--clients",
    "--requests",
    "--shards",
    "--backend",
    "--chunk",
    "--depth",
    "--fault-latency-ms",
];

/// Deepest supported pipeline. Must stay safely below the server's
/// per-connection pipeline cap (128): a client that writes more requests
/// than the server is willing to buffer — while itself not reading
/// responses — deadlocks on its own socket, by design.
const MAX_DEPTH: usize = 64;

/// Attempts per query before a persistent `busy` rejection counts as a
/// failure.
const BUSY_RETRIES: usize = 200;

#[derive(Debug)]
struct Options {
    endpoint: Endpoint,
    endpoint_explicit: bool,
    clients: usize,
    requests: usize,
    quick: bool,
    json: bool,
    spawn: bool,
    shards: usize,
    backend: String,
    shutdown: bool,
    chunk: usize,
    pipelined: bool,
    depth: usize,
    prepare: bool,
    overlap: bool,
    /// `--no-coalesce` (with `--spawn`): start the server with its planner's
    /// coalescing disabled — the uncoalesced baseline for `--overlap` runs.
    coalesce: bool,
    /// `--skew`: concentrate the query mix on the hot band `0..n/shards`
    /// so static banding overloads shard 0 while the rest idle — the shape
    /// the work-stealing scheduler exists for.
    skew: bool,
    /// `--no-steal` (with `--spawn`): start the server with work stealing
    /// disabled — the pinned static-bands baseline for `--skew` runs.
    steal: bool,
    /// `--fault-latency-ms` (with `--spawn`): start the server with the
    /// fault injector adding a fixed latency to every backend evaluation.
    /// Values are bit-transparent; only service time changes — this is how
    /// the skew benchmark makes compute overlap measurable on small hosts.
    fault_latency_ms: u64,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        endpoint: Endpoint::Tcp("127.0.0.1:7077".to_string()),
        endpoint_explicit: false,
        clients: 16,
        requests: 6,
        quick: false,
        json: false,
        spawn: false,
        shards: 4,
        backend: "analytic".to_string(),
        shutdown: false,
        chunk: 0,
        pipelined: false,
        depth: 8,
        prepare: true,
        overlap: false,
        coalesce: true,
        skew: false,
        steal: true,
        fault_latency_ms: 0,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let arg = arg.as_str();
        if VALUE_FLAGS.contains(&arg) {
            let value = iter.next().ok_or_else(|| format!("{arg} needs a value"))?.clone();
            match arg {
                "--addr" => {
                    options.endpoint = Endpoint::Tcp(value);
                    options.endpoint_explicit = true;
                }
                "--socket" => {
                    options.endpoint = Endpoint::Unix(value.into());
                    options.endpoint_explicit = true;
                }
                "--clients" => options.clients = cli::parse_parallelism(arg, &value)?,
                "--requests" => {
                    options.requests = cli::parse_count(arg, &value, 1, cli::MAX_COUNT)?;
                }
                "--shards" => options.shards = cli::parse_parallelism(arg, &value)?,
                "--backend" => options.backend = value,
                "--chunk" => options.chunk = cli::parse_count(arg, &value, 1, cli::MAX_COUNT)?,
                "--depth" => options.depth = cli::parse_count(arg, &value, 1, MAX_DEPTH)?,
                "--fault-latency-ms" => {
                    options.fault_latency_ms = value
                        .parse::<u64>()
                        .map_err(|_| format!("{arg} needs a non-negative millisecond count"))?;
                }
                other => unreachable!("{other} is listed in VALUE_FLAGS but unhandled"),
            }
        } else {
            match arg {
                "--quick" => options.quick = true,
                "--json" => options.json = true,
                "--spawn" => options.spawn = true,
                "--shutdown" => options.shutdown = true,
                "--pipelined" => options.pipelined = true,
                "--no-prepare" => options.prepare = false,
                "--overlap" => options.overlap = true,
                "--no-coalesce" => options.coalesce = false,
                "--skew" => options.skew = true,
                "--no-steal" => options.steal = false,
                other => return Err(format!("unknown load option `{other}`")),
            }
        }
    }
    if options.spawn && options.endpoint_explicit {
        return Err(
            "--spawn starts its own server on a free local port and cannot be combined with \
             --addr or --socket (drop --spawn to load an existing server)"
                .to_string(),
        );
    }
    if !options.coalesce && !options.spawn {
        return Err("--no-coalesce configures the *spawned* server's planner and needs --spawn \
             (an external server's coalescing is set by its own `repro serve --no-coalesce`)"
            .to_string());
    }
    if !options.steal && !options.spawn {
        return Err("--no-steal configures the *spawned* server's scheduler and needs --spawn \
             (an external server's stealing is set by its own `repro serve --no-steal`)"
            .to_string());
    }
    if options.fault_latency_ms > 0 && !options.spawn {
        return Err("--fault-latency-ms arms the *spawned* server's fault injector and needs \
             --spawn (arm an external server with its own `repro serve --fault-latency-ms`)"
            .to_string());
    }
    Ok(options)
}

/// The query space the generator drives: Table III's classes over symmetric
/// and asymmetric grids under two growth laws. Matches what an interactive
/// DSE client would ask, and is small enough that the local reference sweep
/// stays cheap. The `measured` backend answers for its calibrated
/// applications instead.
pub fn load_space(quick: bool, backend: &dyn EvalBackend) -> ScenarioSpace {
    let sym_points = if quick { 96usize } else { 384 };
    let max_r: f64 = 128.0;
    let sym = (0..sym_points)
        .map(move |i| max_r.powf(i as f64 / (sym_points.saturating_sub(1).max(1)) as f64));
    let pow2 = |limit: f64| {
        std::iter::successors(Some(1.0f64), move |r| (r * 2.0 <= limit).then_some(r * 2.0))
    };
    let apps = if backend.name() == "measured" {
        // Straight from the calibrations (no second backend build).
        crate::dse_cmd::synthetic_calibrations().iter().map(|c| c.app_params().clone()).collect()
    } else {
        AppClass::table3_all().into_iter().map(|c| c.params()).collect()
    };
    ScenarioSpace::new()
        .with_apps(apps)
        .clear_designs()
        .add_symmetric_grid(sym)
        .add_asymmetric_grid([1.0, 4.0], pow2(128.0).skip(1))
        .with_growths(vec![
            mp_model::growth::GrowthFunction::Linear,
            mp_model::growth::GrowthFunction::Logarithmic,
        ])
}

/// Bitwise record-list equality (index, speedup, cores, area).
pub(crate) fn records_identical(a: &[EvalRecord], b: &[EvalRecord]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b.iter()).all(|(x, y)| {
            x.index == y.index
                && x.speedup.to_bits() == y.speedup.to_bits()
                && x.cores.to_bits() == y.cores.to_bits()
                && x.area.to_bits() == y.area.to_bits()
        })
}

/// Look one series up in a metrics-snapshot JSON value
/// (`{"counters":{..},"gauges":{..},"histograms":{..}}`).
fn metrics_series<'a>(
    value: &'a serde_json::Value,
    section: &str,
    name: &str,
) -> Option<&'a serde_json::Value> {
    let section = value.as_map()?.iter().find(|(key, _)| key == section)?;
    section.1.as_map()?.iter().find(|(key, _)| key == name).map(|(_, entry)| entry)
}

/// Verify the server's `metrics` snapshot carries the core series — and
/// that they are nonzero where this load's shape guarantees activity.
/// Returns the problems found (empty = pass); the CI smoke steps fail on
/// any. The check runs against the *server's* registry (over the wire), so
/// with `--spawn` it exercises the whole export path end to end.
fn check_metrics(metrics_json: &str, options: &Options) -> Vec<String> {
    let mut problems = Vec::new();
    let value = match serde_json::parse(metrics_json) {
        Ok(value) => value,
        Err(e) => return vec![format!("metrics response is not valid JSON: {e}")],
    };

    let mut nonzero_counters =
        vec!["requests_total_ping", "requests_total_stats", "requests_total_sweep", "cache_hits"];
    if options.prepare {
        nonzero_counters.push("requests_total_prepare");
    }
    if options.clients >= 2 && options.requests >= 3 && !options.overlap && !options.skew {
        // The deterministic query mix covers top-k (even connections) and
        // Pareto (odd connections) from the third request on — except in
        // overlap mode (all duplicate full sweeps) and skew mode (hot-band
        // windows plus full sweeps), which never send the analysis verbs.
        nonzero_counters.push("requests_total_top_k");
        nonzero_counters.push("requests_total_pareto");
    }
    for name in nonzero_counters {
        match metrics_series(&value, "counters", name).and_then(|v| v.as_f64()) {
            Some(count) if count > 0.0 => {}
            Some(_) => problems.push(format!("counter `{name}` is zero under guaranteed load")),
            None => problems.push(format!("counter `{name}` is missing")),
        }
    }
    // Every sweep is decomposed into scheduler work units, so the unit
    // counter is live under any load shape.
    match metrics_series(&value, "counters", "sched_units_total").and_then(|v| v.as_f64()) {
        Some(count) if count > 0.0 => {}
        Some(_) => {
            problems.push("counter `sched_units_total` is zero under guaranteed load".into())
        }
        None => problems.push("counter `sched_units_total` is missing".into()),
    }
    // The planner's and scheduler's remaining series are registered
    // unconditionally; coalescing, stealing and rejection counts depend on
    // the workload shape, so presence (not activity) is what every load
    // shape can assert.
    for name in [
        "busy_rejections",
        "planner_coalesced_requests",
        "planner_shared_scenarios",
        "planner_cost_rejections",
        "sched_units_stolen",
        "sched_rebands",
    ] {
        if metrics_series(&value, "counters", name).and_then(|v| v.as_f64()).is_none() {
            problems.push(format!("counter `{name}` is missing"));
        }
    }
    for name in ["executor_queue_depth", "alloc_live_bytes", "alloc_peak_bytes"] {
        if metrics_series(&value, "gauges", name).and_then(|v| v.as_f64()).is_none() {
            problems.push(format!("gauge `{name}` is missing"));
        }
    }
    for name in [
        "serve_request_ms_sweep",
        "serve_queue_wait_ms",
        "serve_pipeline_depth",
        "dse_batch_ms",
        // Every scheduled sweep times its Merge-Path recombination and its
        // workers' busy spans, so the load guarantees these are live too.
        "planner_merge_ms",
        "sched_shard_busy_ms",
    ] {
        let count = metrics_series(&value, "histograms", name)
            .and_then(|h| h.as_map()?.iter().find(|(key, _)| key == "count").map(|(_, v)| v))
            .and_then(|v| v.as_f64());
        match count {
            Some(count) if count > 0.0 => {}
            Some(_) => problems.push(format!("histogram `{name}` is empty under guaranteed load")),
            None => problems.push(format!("histogram `{name}` is missing")),
        }
    }
    problems
}

/// One snapshot of the server-side counters the overlap report tracks.
struct PlannerCounters {
    scenarios_evaluated: f64,
    coalesced_requests: f64,
    shared_scenarios: f64,
}

/// Read the planner-relevant counters from the server's live metrics
/// (absent series read as zero, so deltas stay well-defined on old servers).
fn planner_counters(control: &mut Client) -> Result<PlannerCounters, String> {
    let (json, _) = control.metrics().map_err(|e| format!("metrics failed: {e}"))?;
    let value = serde_json::parse(&json).map_err(|e| format!("metrics response: {e}"))?;
    let counter = |name: &str| {
        metrics_series(&value, "counters", name).and_then(|v| v.as_f64()).unwrap_or(0.0)
    };
    Ok(PlannerCounters {
        scenarios_evaluated: counter("dse_scenarios_evaluated"),
        coalesced_requests: counter("planner_coalesced_requests"),
        shared_scenarios: counter("planner_shared_scenarios"),
    })
}

/// Read one counter from the server's live metrics over the wire (absent
/// series read as zero, so deltas stay well-defined on old servers).
fn server_counter(control: &mut Client, name: &str) -> Result<f64, String> {
    let (json, _) = control.metrics().map_err(|e| format!("metrics failed: {e}"))?;
    let value = serde_json::parse(&json).map_err(|e| format!("metrics response: {e}"))?;
    Ok(metrics_series(&value, "counters", name).and_then(|v| v.as_f64()).unwrap_or(0.0))
}

/// The pass's latency histogram: the shared mp-obs snapshot type over the
/// canonical [`LATENCY_BOUNDS_MS`] buckets (bit-identical bounds and JSON
/// layout to the hand-rolled histogram this harness used to carry).
fn latency_histogram(latencies_s: &[f64]) -> HistogramSnapshot {
    let latencies_ms: Vec<f64> = latencies_s.iter().map(|s| s * 1e3).collect();
    HistogramSnapshot::from_values(&LATENCY_BOUNDS_MS, &latencies_ms)
}

/// Per-pass planner activity, read as counter deltas from the *server's*
/// metrics registry (over the wire, so `--spawn` measures the child).
struct OverlapStats {
    /// Scenarios in one distinct sweep of the driven space.
    distinct_scenarios: usize,
    /// `dse_scenarios_evaluated` delta: scenarios the shard engines
    /// processed (cache-served ones included — the cache removes backend
    /// calls, the coalescing planner removes whole duplicate engine passes).
    scenarios_evaluated: u64,
    /// Engine passes per distinct scenario — the overlap benchmark's cost
    /// metric (1.0 = perfect sharing; K duplicate sweeps with coalescing
    /// disabled score K).
    evals_per_distinct: f64,
    /// `planner_coalesced_requests` delta.
    coalesced_requests: u64,
    /// `planner_shared_scenarios` delta.
    shared_scenarios: u64,
}

impl OverlapStats {
    fn json(&self) -> String {
        format!(
            "{{\"distinct_scenarios\":{},\"scenarios_evaluated\":{},\"evals_per_distinct\":{},\"coalesced_requests\":{},\"shared_scenarios\":{}}}",
            self.distinct_scenarios,
            self.scenarios_evaluated,
            self.evals_per_distinct,
            self.coalesced_requests,
            self.shared_scenarios,
        )
    }
}

/// Outcome of one load pass.
struct PassReport {
    name: &'static str,
    requests: usize,
    elapsed_seconds: f64,
    queries_per_second: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    parity_failures: usize,
    busy_retries: u64,
    busy_exhausted: usize,
    cache_hits: u64,
    cache_misses: u64,
    hit_rate: f64,
    histogram: HistogramSnapshot,
    /// Planner deltas (overlap mode only).
    overlap: Option<OverlapStats>,
}

impl PassReport {
    fn json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"requests\":{},\"elapsed_seconds\":{},\"queries_per_second\":{},\"p50_ms\":{},\"p95_ms\":{},\"p99_ms\":{},\"max_ms\":{},\"parity_failures\":{},\"busy_retries\":{},\"busy_exhausted\":{},\"cache_hits\":{},\"cache_misses\":{},\"hit_rate\":{},\"latency_histogram\":{}{}}}",
            self.name,
            self.requests,
            self.elapsed_seconds,
            self.queries_per_second,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.max_ms,
            self.parity_failures,
            self.busy_retries,
            self.busy_exhausted,
            self.cache_hits,
            self.cache_misses,
            self.hit_rate,
            self.histogram.json_buckets(),
            match &self.overlap {
                Some(overlap) => format!(",\"overlap\":{}", overlap.json()),
                None => String::new(),
            },
        )
    }
}

/// The local ground truth every response is compared against.
struct Reference {
    space: ScenarioSpace,
    records: Vec<EvalRecord>,
    top: Vec<EvalRecord>,
    frontier_cores: Vec<EvalRecord>,
    frontier_area: Vec<EvalRecord>,
}

/// One query of the deterministic per-(connection, request) mix.
#[derive(Debug, Clone)]
enum Query {
    Full,
    Window(Range<usize>),
    Top,
    Frontier(CostAxis),
}

impl Query {
    /// The query for one (connection, request) slot. Overlap mode sends the
    /// identical full sweep from every slot — maximum in-flight duplication,
    /// the shape the planner's coalescing table exists for. Skew mode
    /// concentrates on the hot band instead — maximum shard imbalance, the
    /// shape the work-stealing scheduler exists for.
    fn for_options(connection: usize, request: usize, n: usize, options: &Options) -> Query {
        if options.overlap {
            Query::Full
        } else if options.skew {
            Query::for_skewed_slot(connection, request, n, options.shards)
        } else {
            Query::for_slot(connection, request, n)
        }
    }

    /// The skewed mix: seven in eight queries are windows inside the hot
    /// band `0..n/shards` (entirely shard 0's territory under static
    /// banding), the eighth is a full sweep so every shard's cache still
    /// warms and the fused merge keeps being exercised end to end.
    /// Deterministic in (connection, request) like the mixed shape.
    fn for_skewed_slot(connection: usize, request: usize, n: usize, shards: usize) -> Query {
        if (connection + request) % 8 == 7 {
            return Query::Full;
        }
        let hot = (n / shards.max(1)).max(1);
        let start = (connection * 7919 + request * 104_729) % hot;
        let end = (start + hot / 2 + 1).min(n);
        Query::Window(start..end)
    }

    /// The same mixed workload shape the v1 generator used, deterministic in
    /// (connection, request index) so reruns are reproducible.
    fn for_slot(connection: usize, request: usize, n: usize) -> Query {
        match request % 3 {
            0 => Query::Full,
            1 => {
                let start = (connection * 7919 + request * 104_729) % n;
                let end = (start + n / 4 + 1).min(n);
                Query::Window(start..end)
            }
            _ => {
                if connection % 2 == 0 {
                    Query::Top
                } else if request % 2 == 0 {
                    Query::Frontier(CostAxis::Cores)
                } else {
                    Query::Frontier(CostAxis::Area)
                }
            }
        }
    }

    fn request(&self, reference: &Reference, spec: &SpaceSpec, chunk: usize) -> Request {
        let space = spec.clone();
        match self {
            Query::Full => Request::Sweep { space, start: 0, end: reference.space.len(), chunk },
            Query::Window(window) => {
                Request::Sweep { space, start: window.start, end: window.end, chunk }
            }
            Query::Top => Request::TopK { space, k: 10 },
            Query::Frontier(cost) => Request::Pareto { space, cost: *cost },
        }
    }

    /// Check one query's collected responses against the local ground
    /// truth. `Ok(parity_held)`, or `Err(())` when the server reported
    /// `busy` (not a parity verdict — retry).
    fn verify(&self, responses: Vec<Response>, reference: &Reference) -> Result<bool, ()> {
        if responses.iter().any(|r| matches!(r, Response::Busy { .. })) {
            return Err(());
        }
        match self {
            Query::Full => Ok(assemble_sweep(responses, &(0..reference.space.len()))
                .map(|(records, stats)| {
                    stats.scenarios == reference.space.len()
                        && records_identical(&records, &reference.records)
                })
                .unwrap_or(false)),
            Query::Window(window) => Ok(assemble_sweep(responses, window)
                .map(|(records, _)| records_identical(&records, &reference.records[window.clone()]))
                .unwrap_or(false)),
            Query::Top | Query::Frontier(_) => {
                let truth = match self {
                    Query::Top => &reference.top,
                    Query::Frontier(CostAxis::Cores) => &reference.frontier_cores,
                    _ => &reference.frontier_area,
                };
                match responses.as_slice() {
                    [Response::Records { records }] => {
                        Ok(records_identical(&from_wire(records), truth))
                    }
                    _ => Ok(false),
                }
            }
        }
    }
}

/// What one query ultimately amounted to.
enum QueryOutcome {
    /// A response arrived and matched the local ground truth bitwise.
    Verified,
    /// A response arrived and did **not** match — a real parity failure.
    Mismatch,
    /// The server was still rejecting with `busy` after the whole retry
    /// budget: the query was never answered, so it is server saturation,
    /// not a parity verdict. Counted (and failed) separately so the
    /// differential-test report stays truthful.
    BusyExhausted,
}

/// Run one query with bounded busy-retry via the shared client
/// [`RetryPolicy`] (jittered exponential backoff, floored at the server's
/// `estimated_cost_ms` hint). Returns the outcome plus how many busy
/// rejections were absorbed.
fn run_query(
    client: &mut Client,
    query: &Query,
    reference: &Reference,
    spec: &SpaceSpec,
    chunk: usize,
) -> Result<(QueryOutcome, u64), String> {
    let policy = RetryPolicy::backoff_ms(1, 250).with_retries(BUSY_RETRIES);
    let request = query.request(reference, spec, chunk);
    let salt = reference.space.len() as u64 ^ ((chunk as u64) << 32);
    let outcome =
        client.call_with_retry(&request, &policy, salt).map_err(|e| format!("call: {e}"))?;
    if outcome.exhausted {
        return Ok((QueryOutcome::BusyExhausted, outcome.busy_retries));
    }
    match query.verify(outcome.responses, reference) {
        Ok(true) => Ok((QueryOutcome::Verified, outcome.busy_retries)),
        Ok(false) => Ok((QueryOutcome::Mismatch, outcome.busy_retries)),
        // call_with_retry only hands back a busy answer when the budget is
        // exhausted, which is handled above.
        Err(()) => Ok((QueryOutcome::BusyExhausted, outcome.busy_retries)),
    }
}

/// Aggregated outcome of one pass.
struct PassOutcome {
    latencies: Vec<f64>,
    failures: usize,
    busy_retries: u64,
    busy_exhausted: usize,
}

/// Run one pass of `clients × requests` mixed queries. Connections are
/// multiplexed over at most 64 generator threads. In pipelined mode each
/// connection sends `depth` requests back-to-back per wave and the recorded
/// latencies are wave-completion times; otherwise one latency per request.
fn run_pass(
    endpoint: &Endpoint,
    reference: &Reference,
    options: &Options,
) -> Result<PassOutcome, String> {
    let clients = options.clients;
    let requests = options.requests;
    let threads = clients.min(64);
    let failures = std::sync::atomic::AtomicUsize::new(0);
    let busy_retries = std::sync::atomic::AtomicU64::new(0);
    let busy_exhausted = std::sync::atomic::AtomicUsize::new(0);
    let latencies = std::sync::Mutex::new(Vec::with_capacity(clients * requests));
    let n = reference.space.len();
    std::thread::scope(|scope| -> Result<(), String> {
        let mut handles = Vec::with_capacity(threads);
        for thread_index in 0..threads {
            let failures = &failures;
            let busy_retries = &busy_retries;
            let busy_exhausted = &busy_exhausted;
            let latencies = &latencies;
            handles.push(scope.spawn(move || -> Result<(), String> {
                // This thread's share of the connection ids.
                let mine: Vec<usize> = (thread_index..clients).step_by(threads).collect();
                let mut conns = Vec::with_capacity(mine.len());
                for &connection in &mine {
                    let mut client = Client::connect(endpoint)
                        .map_err(|e| format!("connection {connection}: connect failed: {e}"))?;
                    // Prepared mode: register the space once per connection
                    // and address it by id afterwards, the way a resident
                    // DSE client would; --no-prepare ships the space's JSON
                    // with every request instead (the v1 protocol shape).
                    let spec = if options.prepare {
                        let (id, scenarios) = client
                            .prepare(&reference.space)
                            .map_err(|e| format!("connection {connection}: prepare: {e}"))?;
                        if scenarios != n {
                            return Err(format!(
                                "connection {connection}: prepared space has {scenarios} of {n} scenarios"
                            ));
                        }
                        SpaceSpec::Prepared { id }
                    } else {
                        SpaceSpec::Explicit(reference.space.clone())
                    };
                    conns.push((connection, client, spec));
                }
                let mut local_lat: Vec<f64> = Vec::new();
                let mut local_fail = 0usize;
                let mut local_busy = 0u64;
                let mut local_exhausted = 0usize;

                if options.pipelined {
                    let mut sent = 0usize;
                    while sent < requests {
                        let wave = options.depth.min(requests - sent);
                        for (connection, client, spec) in conns.iter_mut() {
                            let queries: Vec<Query> = (sent..sent + wave)
                                .map(|request| Query::for_options(*connection, request, n, options))
                                .collect();
                            let wire: Vec<Request> = queries
                                .iter()
                                .map(|q| q.request(reference, spec, options.chunk))
                                .collect();
                            let started = Instant::now();
                            let responses = client.call_pipelined(wire).map_err(|e| {
                                format!("connection {connection}: pipelined wave: {e}")
                            })?;
                            local_lat.push(started.elapsed().as_secs_f64());
                            for (query, answer) in queries.iter().zip(responses) {
                                match query.verify(answer, reference) {
                                    Ok(true) => {}
                                    Ok(false) => local_fail += 1,
                                    Err(()) => {
                                        // Busy mid-pipeline: retry solo.
                                        let (outcome, retries) = run_query(
                                            client,
                                            query,
                                            reference,
                                            spec,
                                            options.chunk,
                                        )?;
                                        local_busy += 1 + retries;
                                        match outcome {
                                            QueryOutcome::Verified => {}
                                            QueryOutcome::Mismatch => local_fail += 1,
                                            QueryOutcome::BusyExhausted => local_exhausted += 1,
                                        }
                                    }
                                }
                            }
                        }
                        sent += wave;
                    }
                } else {
                    for request in 0..requests {
                        for (connection, client, spec) in conns.iter_mut() {
                            let query = Query::for_options(*connection, request, n, options);
                            let started = Instant::now();
                            let (outcome, retries) =
                                run_query(client, &query, reference, spec, options.chunk)
                                    .map_err(|e| format!("connection {connection}: {e}"))?;
                            local_lat.push(started.elapsed().as_secs_f64());
                            local_busy += retries;
                            match outcome {
                                QueryOutcome::Verified => {}
                                QueryOutcome::Mismatch => local_fail += 1,
                                QueryOutcome::BusyExhausted => local_exhausted += 1,
                            }
                        }
                    }
                }

                failures.fetch_add(local_fail, std::sync::atomic::Ordering::Relaxed);
                busy_retries.fetch_add(local_busy, std::sync::atomic::Ordering::Relaxed);
                busy_exhausted.fetch_add(local_exhausted, std::sync::atomic::Ordering::Relaxed);
                latencies.lock().unwrap_or_else(|e| e.into_inner()).extend(local_lat);
                Ok(())
            }));
        }
        for handle in handles {
            handle.join().map_err(|_| "a load thread panicked".to_string())??;
        }
        Ok(())
    })?;
    let latencies = latencies.into_inner().unwrap_or_else(|e| e.into_inner());
    Ok(PassOutcome {
        latencies,
        failures: failures.into_inner(),
        busy_retries: busy_retries.into_inner(),
        busy_exhausted: busy_exhausted.into_inner(),
    })
}

/// Spawn `repro serve` as a child on a free port and wait for its readiness
/// line. Returns the child and the endpoint it listens on.
fn spawn_server(options: &Options) -> Result<(std::process::Child, Endpoint), String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate repro binary: {e}"))?;
    let mut args = vec![
        "serve".to_string(),
        "--addr".to_string(),
        "127.0.0.1:0".to_string(),
        "--shards".to_string(),
        options.shards.to_string(),
        "--backend".to_string(),
        options.backend.clone(),
    ];
    if !options.coalesce {
        args.push("--no-coalesce".to_string());
    }
    if !options.steal {
        args.push("--no-steal".to_string());
    }
    if options.fault_latency_ms > 0 {
        args.push("--fault-latency-ms".to_string());
        args.push(options.fault_latency_ms.to_string());
    }
    let mut child = std::process::Command::new(exe)
        .args(&args)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .map_err(|e| format!("failed to spawn repro serve: {e}"))?;
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        let read = reader.read_line(&mut line).map_err(|e| {
            let _ = child.kill();
            format!("reading serve readiness line failed: {e}")
        })?;
        if read == 0 {
            let _ = child.kill();
            return Err("repro serve exited before becoming ready".to_string());
        }
        if let Some(rest) = line.split("listening on tcp://").nth(1) {
            let addr = rest.split_whitespace().next().unwrap_or("").to_string();
            if addr.is_empty() {
                let _ = child.kill();
                return Err(format!("malformed readiness line: {line}"));
            }
            // Keep draining the child's stdout so its final shutdown print
            // can never block on a full pipe.
            std::thread::spawn(move || {
                let mut sink = String::new();
                while matches!(reader.read_line(&mut sink), Ok(read) if read > 0) {
                    sink.clear();
                }
            });
            return Ok((child, Endpoint::Tcp(addr)));
        }
    }
}

/// Entry point of the `load` subcommand.
pub fn run(args: &[String]) -> ExitCode {
    let options = match parse(args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            eprintln!(
                "usage: repro load [--addr HOST:PORT | --socket PATH] [--clients N] [--requests N] \
                 [--backend analytic|comm|sim|measured] [--chunk N] [--shards N (with --spawn)] \
                 [--pipelined] [--depth N] [--no-prepare] [--overlap] [--skew] \
                 [--no-coalesce | --no-steal | --fault-latency-ms MS (each with --spawn)] \
                 [--quick] [--json] [--spawn] [--shutdown]"
            );
            return ExitCode::FAILURE;
        }
    };

    // The local reference backend — by construction identical to what
    // `repro serve` runs for the same name (one shared constructor).
    let backend = match cli::backend_by_name(&options.backend) {
        Ok(backend) => backend,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let mut child = None;
    let endpoint = if options.spawn {
        match spawn_server(&options) {
            Ok((spawned, endpoint)) => {
                child = Some(spawned);
                endpoint
            }
            Err(message) => {
                eprintln!("{message}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        options.endpoint.clone()
    };

    let outcome = drive(&options, backend.as_ref(), &endpoint);

    // Always reap a spawned server, even after a failed run.
    if let Some(mut child) = child {
        let shutdown_sent = outcome.is_ok() || {
            // Best-effort shutdown after a failure too.
            Client::connect(&endpoint).map(|mut c| c.shutdown().is_ok()).unwrap_or(false)
        };
        if !shutdown_sent {
            let _ = child.kill();
        }
        let _ = child.wait();
    }

    match outcome {
        Ok(ok) => {
            if ok {
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "load run failed its acceptance checks (parity, >90% warm hit rate, live \
                     metrics, under --overlap observed coalescing, and under --skew observed \
                     steals)"
                );
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

/// The measured load run proper; returns whether the acceptance checks held.
fn drive(
    options: &Options,
    backend: &(dyn EvalBackend + Send + Sync),
    endpoint: &Endpoint,
) -> Result<bool, String> {
    // Wait for the server (freshly spawned ones need a moment to bind).
    let mut control = None;
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    while control.is_none() {
        match Client::connect(endpoint) {
            Ok(client) => control = Some(client),
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            Err(e) => return Err(format!("cannot reach {endpoint}: {e}")),
        }
    }
    let mut control = control.expect("connected above");
    let version = control.ping().map_err(|e| format!("ping failed: {e}"))?;
    let steals_before = server_counter(&mut control, "sched_units_stolen")?;

    // Local ground truth: one direct engine sweep of the same space.
    let space = load_space(options.quick, backend);
    let direct = Engine::with_all_cores().sweep(&space, backend, &SweepConfig::default());
    let reference = Arc::new(Reference {
        top: top_k(&direct.records, 10),
        frontier_cores: pareto_frontier(&direct.records, CostAxis::Cores),
        frontier_area: pareto_frontier(&direct.records, CostAxis::Area),
        records: direct.records,
        space,
    });

    let mut reports = Vec::with_capacity(2);
    let mut parity_failures = 0usize;
    let mut busy_exhausted = 0usize;
    for pass in ["cold", "warm"] {
        // Each pass measures its own allocator high-water mark; without the
        // reset the warm pass would inherit (and report) the cold pass's
        // peak forever.
        alloc_track::reset_peak();
        let before = control.stats().map_err(|e| format!("stats failed: {e}"))?.cache_totals();
        let planner_before =
            if options.overlap { Some(planner_counters(&mut control)?) } else { None };
        let started = Instant::now();
        let outcome = run_pass(endpoint, &reference, options)?;
        let elapsed = started.elapsed().as_secs_f64();
        let after = control.stats().map_err(|e| format!("stats failed: {e}"))?.cache_totals();
        let overlap = match &planner_before {
            Some(planner_before) => {
                let planner_after = planner_counters(&mut control)?;
                let evaluated = (planner_after.scenarios_evaluated
                    - planner_before.scenarios_evaluated)
                    .max(0.0) as u64;
                let distinct = reference.space.len();
                Some(OverlapStats {
                    distinct_scenarios: distinct,
                    scenarios_evaluated: evaluated,
                    evals_per_distinct: evaluated as f64 / distinct.max(1) as f64,
                    coalesced_requests: (planner_after.coalesced_requests
                        - planner_before.coalesced_requests)
                        .max(0.0) as u64,
                    shared_scenarios: (planner_after.shared_scenarios
                        - planner_before.shared_scenarios)
                        .max(0.0) as u64,
                })
            }
            None => None,
        };
        let mut latencies = outcome.latencies;
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let requests = options.clients * options.requests;
        let hits = after.hits - before.hits;
        let misses = after.misses - before.misses;
        parity_failures += outcome.failures;
        busy_exhausted += outcome.busy_exhausted;
        reports.push(PassReport {
            name: pass,
            requests,
            elapsed_seconds: elapsed,
            queries_per_second: requests as f64 / elapsed.max(1e-9),
            p50_ms: percentile_of_sorted(&latencies, 0.50) * 1e3,
            p95_ms: percentile_of_sorted(&latencies, 0.95) * 1e3,
            p99_ms: percentile_of_sorted(&latencies, 0.99) * 1e3,
            max_ms: latencies.last().copied().unwrap_or(0.0) * 1e3,
            parity_failures: outcome.failures,
            busy_retries: outcome.busy_retries,
            busy_exhausted: outcome.busy_exhausted,
            cache_hits: hits,
            cache_misses: misses,
            hit_rate: if hits + misses == 0 { 0.0 } else { hits as f64 / (hits + misses) as f64 },
            histogram: latency_histogram(&latencies),
            overlap,
        });
    }

    let warm = reports.last().expect("two passes ran");
    let warm_hit_rate = warm.hit_rate;
    let nonzero_hits = warm.cache_hits > 0;

    // Observability smoke: the server's `metrics` snapshot (fetched over the
    // wire, so with `--spawn` this is the child process's registry) must
    // carry the core series, nonzero where this load guarantees activity.
    let (metrics_json, _prometheus) =
        control.metrics().map_err(|e| format!("metrics failed: {e}"))?;
    let metrics_problems = check_metrics(&metrics_json, options);
    let metrics_ok = metrics_problems.is_empty();

    // Overlap acceptance: with coalescing enabled, the all-duplicate
    // workload must actually coalesce — a run where no request ever shared
    // an in-flight evaluation means the planner was not exercised.
    let coalesced_total: u64 =
        reports.iter().filter_map(|r| r.overlap.as_ref()).map(|o| o.coalesced_requests).sum();
    let coalesce_ok = !options.overlap || !options.coalesce || coalesced_total > 0;

    // Skew acceptance: with stealing enabled on a spawned multi-shard
    // server, the hot-band workload must actually provoke steals — zero
    // steals means the scheduler degenerated to static bands and was not
    // exercised. (External servers are exempt — their scheduler config is
    // not ours to know — as are single-shard spawns, which have no victim
    // deque to steal from.)
    let steals_after = {
        let value = serde_json::parse(&metrics_json).map_err(|e| format!("metrics: {e}"))?;
        metrics_series(&value, "counters", "sched_units_stolen")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0)
    };
    let steals_observed = (steals_after - steals_before).max(0.0) as u64;
    let steal_ok = !options.skew
        || !options.steal
        || !options.spawn
        || options.shards < 2
        || steals_observed > 0;

    let ok = parity_failures == 0
        && busy_exhausted == 0
        && warm_hit_rate > 0.9
        && nonzero_hits
        && metrics_ok
        && coalesce_ok
        && steal_ok;

    if options.shutdown || options.spawn {
        control.shutdown().map_err(|e| format!("shutdown failed: {e}"))?;
    }

    if options.json {
        let passes: Vec<String> = reports.iter().map(PassReport::json).collect();
        println!(
            "{{\"experiment\":\"load\",\"endpoint\":\"{endpoint}\",\"protocol\":\"{version}\",\"backend\":\"{}\",\"clients\":{},\"requests_per_client\":{},\"pipelined\":{},\"depth\":{},\"prepared_spaces\":{},\"overlap_mode\":{},\"coalesce\":{},\"skew_mode\":{},\"steal\":{},\"fault_latency_ms\":{},\"steals_observed\":{steals_observed},\"scenarios_per_sweep\":{},\"passes\":[{}],\"parity_failures\":{parity_failures},\"busy_exhausted\":{busy_exhausted},\"warm_hit_rate\":{warm_hit_rate},\"metrics_ok\":{metrics_ok},\"metrics_problems\":[{}],\"ok\":{ok}}}",
            backend.name(),
            options.clients,
            options.requests,
            options.pipelined,
            if options.pipelined { options.depth } else { 1 },
            options.prepare,
            options.overlap,
            options.coalesce,
            options.skew,
            options.steal,
            options.fault_latency_ms,
            reference.space.len(),
            passes.join(","),
            metrics_problems
                .iter()
                .map(|p| format!("\"{}\"", p.replace('"', "'")))
                .collect::<Vec<_>>()
                .join(","),
        );
    } else {
        println!(
            "closed-loop load against {endpoint} ({version}, backend `{}`{})",
            backend.name(),
            if options.pipelined {
                format!(", pipelined depth {}", options.depth)
            } else {
                String::new()
            },
        );
        println!(
            "  {} connections x {} requests/pass over a {}-scenario space",
            options.clients,
            options.requests,
            reference.space.len(),
        );
        let latency_unit = if options.pipelined { "wave" } else { "request" };
        for report in &reports {
            println!(
                "  {:<4} pass: {:>7.1} queries/s | {latency_unit} latency p50 {:>7.1}ms p95 {:>7.1}ms p99 {:>7.1}ms max {:>7.1}ms | cache {} hits / {} misses ({:.1}% hit rate){}",
                report.name,
                report.queries_per_second,
                report.p50_ms,
                report.p95_ms,
                report.p99_ms,
                report.max_ms,
                report.cache_hits,
                report.cache_misses,
                report.hit_rate * 100.0,
                if report.busy_retries > 0 {
                    format!(" | {} busy retries", report.busy_retries)
                } else {
                    String::new()
                },
            );
            println!("       histogram: {}", report.histogram.render());
            if let Some(overlap) = &report.overlap {
                println!(
                    "       overlap: {:.2} evaluations per distinct scenario ({} evaluated / {} distinct) | {} coalesced requests | {} shared scenarios",
                    overlap.evals_per_distinct,
                    overlap.scenarios_evaluated,
                    overlap.distinct_scenarios,
                    overlap.coalesced_requests,
                    overlap.shared_scenarios,
                );
            }
        }
        if options.overlap {
            println!(
                "  overlap: planner coalescing {} | {} coalesced requests across both passes{}",
                if options.coalesce { "enabled" } else { "disabled (baseline)" },
                coalesced_total,
                if coalesce_ok { "" } else { " — FAIL: duplicate sweeps never coalesced" },
            );
        }
        if options.skew {
            println!(
                "  skew: hot-band workload, work stealing {} | {} units stolen{}",
                if options.steal { "enabled" } else { "disabled (static-bands baseline)" },
                steals_observed,
                if steal_ok { "" } else { " — FAIL: the hot band never provoked a steal" },
            );
        }
        if metrics_ok {
            println!("  metrics: all core series present and active");
        } else {
            for problem in &metrics_problems {
                println!("  metrics: {problem}");
            }
        }
        println!(
            "  parity: {}{} | warm hit rate {:.1}% ({}) ",
            if parity_failures == 0 {
                "every response bit-identical to Engine::sweep".to_string()
            } else {
                format!("{parity_failures} FAILURES")
            },
            if busy_exhausted == 0 {
                String::new()
            } else {
                // Saturation, not a correctness verdict: these queries were
                // never answered, so they are reported apart from parity.
                format!(" | {busy_exhausted} queries unanswered after busy-retry budget")
            },
            warm_hit_rate * 100.0,
            if ok { "PASS" } else { "FAIL" },
        );
    }
    Ok(ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_sustain_sixteen_clients_and_reject_bad_counts() {
        let options = parse(&[]).unwrap();
        assert_eq!(options.clients, 16, "acceptance floor: >= 16 concurrent clients");
        assert_eq!(options.shards, 4);
        assert!(!options.pipelined);
        assert_eq!(options.depth, 8);
        assert!(parse(&["--clients".to_string(), "0".to_string()]).is_err());
        assert!(parse(&["--requests".to_string(), "0".to_string()]).is_err());
        assert!(parse(&["--chunk".to_string(), "0".to_string()]).is_err());
        assert!(parse(&["--depth".to_string(), "0".to_string()]).is_err());
        assert!(
            parse(&["--depth".to_string(), "65".to_string()]).is_err(),
            "depth must stay below the server's pipeline cap"
        );
        assert!(parse(&["--bogus".to_string()]).is_err());
        assert!(cli::backend_by_name("nope").is_err());
        let conflict =
            parse(&["--spawn".to_string(), "--addr".to_string(), "1.2.3.4:1".to_string()])
                .unwrap_err();
        assert!(conflict.contains("cannot be combined"), "{conflict}");
        let pipelined =
            parse(&["--pipelined".to_string(), "--depth".to_string(), "4".to_string()]).unwrap();
        assert!(pipelined.pipelined);
        assert_eq!(pipelined.depth, 4);

        // Overlap mode and the coalescing toggle.
        assert!(!parse(&[]).unwrap().overlap);
        assert!(parse(&[]).unwrap().coalesce);
        let overlap = parse(&["--overlap".to_string()]).unwrap();
        assert!(overlap.overlap && overlap.coalesce);
        let baseline =
            parse(&["--overlap".to_string(), "--no-coalesce".to_string(), "--spawn".to_string()])
                .unwrap();
        assert!(baseline.overlap && !baseline.coalesce && baseline.spawn);
        let orphan = parse(&["--no-coalesce".to_string()]).unwrap_err();
        assert!(orphan.contains("--spawn"), "{orphan}");

        // Skew mode and the scheduler toggles.
        assert!(!parse(&[]).unwrap().skew);
        assert!(parse(&[]).unwrap().steal, "work stealing defaults on");
        assert_eq!(parse(&[]).unwrap().fault_latency_ms, 0);
        let skew = parse(&["--skew".to_string()]).unwrap();
        assert!(skew.skew && skew.steal);
        let pinned = parse(&[
            "--skew".to_string(),
            "--no-steal".to_string(),
            "--spawn".to_string(),
            "--fault-latency-ms".to_string(),
            "2".to_string(),
        ])
        .unwrap();
        assert!(pinned.skew && !pinned.steal && pinned.spawn);
        assert_eq!(pinned.fault_latency_ms, 2);
        let orphan_steal = parse(&["--no-steal".to_string()]).unwrap_err();
        assert!(orphan_steal.contains("--spawn"), "{orphan_steal}");
        let orphan_fault = parse(&["--fault-latency-ms".to_string(), "5".to_string()]).unwrap_err();
        assert!(orphan_fault.contains("--spawn"), "{orphan_fault}");
        assert!(parse(&["--fault-latency-ms".to_string(), "-1".to_string()]).is_err());
    }

    #[test]
    fn skew_mode_concentrates_windows_in_the_hot_band() {
        let skew = parse(&["--skew".to_string()]).unwrap();
        let n = 4096;
        let hot = n / skew.shards;
        let mut windows = 0usize;
        let mut fulls = 0usize;
        for connection in 0..16 {
            for request in 0..6 {
                let a = Query::for_options(connection, request, n, &skew);
                let b = Query::for_options(connection, request, n, &skew);
                assert_eq!(format!("{a:?}"), format!("{b:?}"), "skew mix is deterministic");
                match a {
                    Query::Window(window) => {
                        assert!(
                            window.start < hot,
                            "skewed windows start inside the hot band: {window:?}"
                        );
                        assert!(window.start < window.end && window.end <= n);
                        windows += 1;
                    }
                    Query::Full => fulls += 1,
                    other => panic!("skew mix sends only windows and full sweeps, got {other:?}"),
                }
            }
        }
        assert!(fulls > 0, "the occasional full sweep keeps every shard warm");
        assert!(
            windows > fulls * 4,
            "the mix is dominated by hot-band windows ({windows} windows, {fulls} fulls)"
        );

        // Degenerate spaces never panic or escape bounds.
        if let Query::Window(window) = Query::for_skewed_slot(3, 1, 1, 8) {
            assert!(window.start == 0 && window.end == 1);
        }
    }

    #[test]
    fn overlap_mode_sends_the_identical_full_sweep_from_every_slot() {
        let overlap = parse(&["--overlap".to_string()]).unwrap();
        let mixed = parse(&[]).unwrap();
        let n = 500;
        for connection in 0..8 {
            for request in 0..6 {
                assert!(matches!(
                    Query::for_options(connection, request, n, &overlap),
                    Query::Full
                ));
            }
        }
        // The mixed shape still rotates through windows and analyses.
        assert!(matches!(Query::for_options(0, 1, n, &mixed), Query::Window(_)));
        assert!(matches!(Query::for_options(0, 2, n, &mixed), Query::Top));
    }

    #[test]
    fn percentiles_are_monotone() {
        let sorted: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(percentile_of_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_of_sorted(&sorted, 1.0), 99.0);
        assert!(percentile_of_sorted(&sorted, 0.5) <= percentile_of_sorted(&sorted, 0.95));
        assert_eq!(percentile_of_sorted(&[], 0.5), 0.0);
    }

    #[test]
    fn histogram_buckets_cover_all_latencies() {
        // Latencies arrive in seconds; the shared snapshot type buckets them
        // in milliseconds over the canonical bounds.
        let latencies = [0.0001, 0.001, 0.050, 1.0, 100.0];
        let histogram = latency_histogram(&latencies);
        assert_eq!(histogram.count(), latencies.len() as u64);
        assert_eq!(*histogram.counts.last().unwrap(), 1, "100s lands in +inf");
        assert!(histogram.json_buckets().contains("\"le_ms\":0.25"));
        assert!(!histogram.render().is_empty());
    }

    #[test]
    fn metrics_check_flags_missing_and_zero_series() {
        let options = parse(&[]).unwrap();
        assert!(
            !check_metrics("not json", &options).is_empty(),
            "malformed payloads must be reported"
        );
        let empty = r#"{"counters":{},"gauges":{},"histograms":{}}"#;
        let problems = check_metrics(empty, &options);
        assert!(problems.iter().any(|p| p.contains("requests_total_sweep")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("executor_queue_depth")), "{problems:?}");

        // A snapshot with every required series present and active passes.
        let hist = r#"{"count":3,"sum":1.5,"buckets":[]}"#;
        let good = format!(
            concat!(
                "{{\"counters\":{{\"requests_total_ping\":2,\"requests_total_stats\":4,",
                "\"requests_total_sweep\":8,\"requests_total_prepare\":1,",
                "\"requests_total_top_k\":3,\"requests_total_pareto\":3,",
                "\"cache_hits\":100,\"busy_rejections\":0,",
                "\"planner_coalesced_requests\":0,\"planner_shared_scenarios\":0,",
                "\"planner_cost_rejections\":0,\"sched_units_total\":12,",
                "\"sched_units_stolen\":0,\"sched_rebands\":0}},",
                "\"gauges\":{{\"executor_queue_depth\":0,\"alloc_live_bytes\":10,",
                "\"alloc_peak_bytes\":20}},",
                "\"histograms\":{{\"serve_request_ms_sweep\":{h},",
                "\"serve_queue_wait_ms\":{h},\"serve_pipeline_depth\":{h},",
                "\"dse_batch_ms\":{h},\"planner_merge_ms\":{h},",
                "\"sched_shard_busy_ms\":{h}}}}}"
            ),
            h = hist
        );
        assert_eq!(check_metrics(&good, &options), Vec::<String>::new());

        // Zero where load guarantees activity is a failure, not a pass.
        let zeroed = good.replace("\"cache_hits\":100", "\"cache_hits\":0");
        assert!(check_metrics(&zeroed, &options).iter().any(|p| p.contains("cache_hits")));

        // The planner series must be exported even at zero activity...
        let no_planner = good.replace("\"planner_coalesced_requests\":0,", "");
        assert!(check_metrics(&no_planner, &options)
            .iter()
            .any(|p| p.contains("planner_coalesced_requests")));
        // ...the scheduler's too, and its unit counter must actually move.
        let no_sched = good.replace("\"sched_units_stolen\":0,", "");
        assert!(check_metrics(&no_sched, &options)
            .iter()
            .any(|p| p.contains("sched_units_stolen")));
        let idle_sched = good.replace("\"sched_units_total\":12,", "\"sched_units_total\":0,");
        assert!(check_metrics(&idle_sched, &options)
            .iter()
            .any(|p| p.contains("sched_units_total")));
        // ...and neither overlap nor skew mode demands the mixed-workload
        // verbs their shapes never send.
        let overlap = parse(&["--overlap".to_string()]).unwrap();
        let skew = parse(&["--skew".to_string()]).unwrap();
        let no_mix = good
            .replace("\"requests_total_top_k\":3,", "\"requests_total_top_k\":0,")
            .replace("\"requests_total_pareto\":3,", "\"requests_total_pareto\":0,");
        assert_eq!(check_metrics(&no_mix, &overlap), Vec::<String>::new());
        assert_eq!(check_metrics(&no_mix, &skew), Vec::<String>::new());
        assert!(check_metrics(&no_mix, &options)
            .iter()
            .any(|p| p.contains("requests_total_top_k")));
    }

    #[test]
    fn query_mix_is_deterministic_and_windows_stay_in_bounds() {
        let n = 1000;
        for connection in 0..20 {
            for request in 0..12 {
                let a = Query::for_slot(connection, request, n);
                let b = Query::for_slot(connection, request, n);
                assert_eq!(format!("{a:?}"), format!("{b:?}"));
                if let Query::Window(window) = a {
                    assert!(window.start < window.end && window.end <= n);
                }
            }
        }
    }

    #[test]
    fn load_space_matches_the_measured_backend_catalogue() {
        let measured =
            mp_dse::backend::MeasuredBackend::new(crate::dse_cmd::synthetic_calibrations());
        let space = load_space(true, &measured);
        let result = Engine::new(1).sweep(&space, &measured, &SweepConfig::default());
        assert!(result.stats.valid > 0, "measured load space must resolve calibrations");
        let analytic_space = load_space(true, &AnalyticBackend);
        assert!(analytic_space.len() > 1000);
    }
}
