//! Shared CLI argument validation for the `repro` subcommands.
//!
//! Every count-valued flag goes through [`parse_count`], which rejects the
//! values `usize::parse` would happily accept but the commands cannot
//! honour: zero (an engine with no threads, a report of no rows), numbers
//! large enough to be typos (a million worker threads), and anything
//! non-numeric — each with a message naming the flag and the accepted range.

/// Ceiling for thread/shard/client counts: far above any real machine, low
/// enough to catch `--threads 1000000` typos before they spawn a machine-
/// crushing number of OS threads.
pub const MAX_PARALLEL: usize = 4096;

/// Ceiling for report sizes (`--top`) and per-request chunk sizes.
pub const MAX_COUNT: usize = 100_000_000;

/// Parse a count-valued flag, requiring `min ..= max`.
pub fn parse_count(flag: &str, value: &str, min: usize, max: usize) -> Result<usize, String> {
    let parsed: usize =
        value.parse().map_err(|_| format!("{flag} needs an integer, got `{value}`"))?;
    if parsed < min {
        return Err(format!("{flag} must be at least {min}, got {parsed}"));
    }
    if parsed > max {
        return Err(format!("{flag} must be at most {max}, got {parsed}"));
    }
    Ok(parsed)
}

/// Parse a worker/shard/client count: `1 ..= MAX_PARALLEL`.
pub fn parse_parallelism(flag: &str, value: &str) -> Result<usize, String> {
    parse_count(flag, value, 1, MAX_PARALLEL)
}

/// Construct an evaluation backend by its CLI name — the single mapping
/// shared by the `dse`, `serve` and `load` subcommands. `load` verifies
/// server responses against a local reference sweep, so the reference and
/// the server **must** build their backends identically; one constructor
/// makes divergence impossible. The `measured` backend is parameterised by
/// the deterministic synthetic catalogue calibrations
/// ([`crate::dse_cmd::synthetic_calibrations`]).
pub fn backend_by_name(
    name: &str,
) -> Result<std::sync::Arc<dyn mp_dse::backend::EvalBackend + Send + Sync>, String> {
    use mp_dse::backend::{AnalyticBackend, CommBackend, MeasuredBackend, SimBackend};
    match name {
        "analytic" => Ok(std::sync::Arc::new(AnalyticBackend)),
        "comm" => Ok(std::sync::Arc::new(CommBackend::new())),
        "sim" => Ok(std::sync::Arc::new(SimBackend::new())),
        "measured" => {
            Ok(std::sync::Arc::new(MeasuredBackend::new(crate::dse_cmd::synthetic_calibrations())))
        }
        other => {
            Err(format!("unknown backend `{other}` (expected analytic, comm, sim or measured)"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_overflow_and_garbage_with_named_messages() {
        let zero = parse_parallelism("--threads", "0").unwrap_err();
        assert!(zero.contains("--threads") && zero.contains("at least 1"), "{zero}");
        let huge = parse_parallelism("--threads", "1000000").unwrap_err();
        assert!(huge.contains("at most 4096"), "{huge}");
        let overflow = parse_parallelism("--threads", "18446744073709551616").unwrap_err();
        assert!(overflow.contains("integer"), "{overflow}");
        let garbage = parse_count("--top", "ten", 1, MAX_COUNT).unwrap_err();
        assert!(garbage.contains("--top") && garbage.contains("`ten`"), "{garbage}");
        assert_eq!(parse_parallelism("--threads", "8"), Ok(8));
        assert_eq!(parse_count("--top", "1", 1, MAX_COUNT), Ok(1));
    }
}
