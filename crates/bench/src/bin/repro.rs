//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p mp-bench --bin repro -- all
//! cargo run --release -p mp-bench --bin repro -- fig4 fig5
//! cargo run --release -p mp-bench --bin repro -- --json table2
//! ```
//!
//! Each experiment prints a fixed-width table; `--json` switches to JSON so
//! results can be archived or plotted externally. `fig2c` runs the real
//! instrumented workloads on the host machine and therefore takes the longest;
//! pass `--quick` to use reduced data sets for it.

use std::process::ExitCode;

use mp_bench::figures;

/// Count heap allocations so `repro dse --profile` can report the sweep hot
/// path's allocation behaviour alongside its throughput.
#[global_allocator]
static ALLOC: mp_bench::alloc_track::CountingAllocator = mp_bench::alloc_track::CountingAllocator;
use mp_profile::report::to_json;
use mp_profile::{render_table, TableRow};

struct Experiment {
    name: &'static str,
    title: &'static str,
    precision: usize,
}

const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        name: "table1", title: "Table I — baseline machine configuration", precision: 2
    },
    Experiment {
        name: "fig2a",
        title: "Figure 2(a) — application scalability (simulation, 1-16 cores)",
        precision: 2,
    },
    Experiment {
        name: "fig2b",
        title: "Figure 2(b) — serial-section growth (simulation, normalised to 1 core)",
        precision: 2,
    },
    Experiment {
        name: "fig2c",
        title: "Figure 2(c) — serial-section growth (real threads on this host)",
        precision: 2,
    },
    Experiment {
        name: "fig2d",
        title: "Figure 2(d) — model accuracy (predicted / simulated serial growth)",
        precision: 3,
    },
    Experiment {
        name: "table2",
        title: "Table II — extracted application parameters (vs paper)",
        precision: 4,
    },
    Experiment {
        name: "fig3",
        title: "Figure 3 — scalability prediction to 256 cores",
        precision: 1,
    },
    Experiment { name: "table3", title: "Table III — application classes", precision: 3 },
    Experiment {
        name: "fig4",
        title: "Figure 4 — symmetric CMP design space (256 BCE)",
        precision: 1,
    },
    Experiment {
        name: "fig5",
        title: "Figure 5 — asymmetric CMP design space (256 BCE)",
        precision: 1,
    },
    Experiment {
        name: "fig6", title: "Figure 6 — serial/reduction fraction split", precision: 1
    },
    Experiment {
        name: "fig7",
        title: "Figure 7 — communication-aware model (2-D mesh)",
        precision: 1,
    },
    Experiment {
        name: "table4",
        title: "Table IV — data-set sensitivity (vs paper)",
        precision: 4,
    },
    Experiment {
        name: "summary",
        title: "ACMP-vs-CMP advantage summary (extended model)",
        precision: 2,
    },
];

fn generate(name: &str, quick: bool) -> Vec<TableRow> {
    match name {
        "table1" => figures::table1_machine_config(),
        "fig2a" => figures::fig2a_scalability(),
        "fig2b" => figures::fig2b_serial_growth(),
        "fig2c" => {
            // The serial-section *growth* is a property of the merging phase's
            // structure (one partial per thread), so the sweep intentionally
            // goes to 8 threads even on hosts with fewer cores; only the
            // absolute speedups — which this experiment does not report —
            // would be affected by oversubscription.
            figures::fig2c_real_serial_growth(&[1, 2, 4, 8], quick)
        }
        "fig2d" => figures::fig2d_model_accuracy(),
        "table2" => figures::table2_extracted_parameters(),
        "fig3" => figures::fig3_scalability_prediction(),
        "table3" => figures::table3_application_classes(),
        "fig4" => figures::fig4_symmetric_design_space(),
        "fig5" => figures::fig5_asymmetric_design_space(),
        "fig6" => figures::fig6_reduction_split(),
        "fig7" => figures::fig7_communication_model(),
        "table4" => figures::table4_dataset_sensitivity(),
        "summary" => figures::design_space::acmp_advantage_summary(),
        other => {
            eprintln!("unknown experiment `{other}`");
            Vec::new()
        }
    }
}

fn usage() {
    eprintln!("usage: repro [--json] [--quick] <experiment>... | all");
    eprintln!(
        "       repro dse [--backend analytic|comm|sim|measured] [--out DIR] [--top K] [--threads N] [--trace PATH] [--quick] [--json] [--profile]"
    );
    eprintln!(
        "       repro calibrate [--threads N] [--out DIR] [--top K] [--quick] [--exact] [--json]"
    );
    eprintln!(
        "       repro serve [--addr HOST:PORT | --socket PATH] [--shards N] [--threads N] [--backend B] [--no-cache] [--loops N] [--executors N] [--queue N]"
    );
    eprintln!(
        "       repro load [--addr HOST:PORT | --socket PATH] [--clients N] [--requests N] [--pipelined] [--depth N] [--no-prepare] [--quick] [--json] [--spawn]"
    );
    eprintln!(
        "       repro job submit|status|cancel|resume [--addr HOST:PORT | --socket PATH] [--id ID] [--chunk N] [--checkpoint-every K] [--wait SECS] [--verify] [--quick] [--dse-space]"
    );
    eprintln!("experiments:");
    for e in EXPERIMENTS {
        eprintln!("  {:<8} {}", e.name, e.title);
    }
    eprintln!("  dse        large-scale design-space exploration (mp-dse engine)");
    eprintln!("  calibrate  run workloads, calibrate the model, sweep the design space");
    eprintln!("  serve      resident sharded sweep service (mp-serve, JSON socket protocol)");
    eprintln!("  load       closed-loop load generator + differential checker for `serve`");
    eprintln!("  job        durable sweep jobs on a running `serve` (submit/status/cancel/resume)");
}

fn main() -> ExitCode {
    // Every subcommand (including a spawned `repro serve`) exposes the
    // allocator gauges through the one metrics registry.
    mp_bench::alloc_track::register_metrics();
    let args: Vec<String> = std::env::args().skip(1).collect();

    // `repro dse [...]` and `repro calibrate [...]` are subcommands with
    // their own flags: a large-scale design-space exploration through the
    // mp-dse engine, and the measure → calibrate → explore pipeline. Flags
    // may precede the subcommand name (`repro --json dse`,
    // `repro --threads 4 calibrate`), matching the main command's own usage
    // shape, so find the subcommand token by scanning past flags — skipping
    // the values of the subcommand flags that take one, so `--out dse` is
    // never mistaken for the subcommand.
    let value_flag = |flag: &str| {
        mp_bench::dse_cmd::VALUE_FLAGS.contains(&flag)
            || mp_bench::calibrate_cmd::VALUE_FLAGS.contains(&flag)
            || mp_bench::serve_cmd::VALUE_FLAGS.contains(&flag)
            || mp_bench::load_cmd::VALUE_FLAGS.contains(&flag)
            || mp_bench::job_cmd::VALUE_FLAGS.contains(&flag)
    };
    let mut cursor = 0usize;
    while cursor < args.len() {
        match args[cursor].as_str() {
            "dse" => {
                let mut rest = args;
                rest.remove(cursor);
                return mp_bench::dse_cmd::run(&rest);
            }
            "calibrate" => {
                let mut rest = args;
                rest.remove(cursor);
                return mp_bench::calibrate_cmd::run(&rest);
            }
            "serve" => {
                let mut rest = args;
                rest.remove(cursor);
                return mp_bench::serve_cmd::run(&rest);
            }
            "load" => {
                let mut rest = args;
                rest.remove(cursor);
                return mp_bench::load_cmd::run(&rest);
            }
            "job" => {
                let mut rest = args;
                rest.remove(cursor);
                return mp_bench::job_cmd::run(&rest);
            }
            flag if value_flag(flag) => cursor += 2,
            flag if flag.starts_with("--") => cursor += 1,
            _ => break,
        }
    }

    let json = args.iter().any(|a| a == "--json");
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();

    if selected.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }

    let names: Vec<&str> = if selected.iter().any(|s| s == "all") {
        EXPERIMENTS.iter().map(|e| e.name).collect()
    } else {
        selected.iter().map(|s| s.as_str()).collect()
    };

    for name in names {
        let Some(exp) = EXPERIMENTS.iter().find(|e| e.name == name) else {
            eprintln!("unknown experiment `{name}` (see `repro` with no arguments for the list)");
            return ExitCode::FAILURE;
        };
        let rows = generate(exp.name, quick);
        if json {
            println!("{{\"experiment\":\"{}\",\"rows\":{}}}", exp.name, to_json(&rows));
        } else {
            println!("{}", render_table(exp.title, &rows, exp.precision));
        }
    }
    ExitCode::SUCCESS
}
