//! # mp-bench — experiment harness for every table and figure of the paper
//!
//! Each module of [`figures`] regenerates one table or figure of
//! *Implications of Merging Phases on Scalability of Multi-core Architectures*
//! (ICPP 2011) and returns its data as labelled rows; the `repro` binary
//! prints them (`cargo run -p mp-bench --bin repro -- all`), and the Criterion
//! benchmarks under `benches/` time the underlying workloads and sweeps.
//!
//! | command          | reproduces |
//! |------------------|------------|
//! | `repro table1`   | Table I — simulated machine configuration |
//! | `repro fig2a`    | Figure 2(a) — application scalability, 1–16 cores |
//! | `repro fig2b`    | Figure 2(b) — serial-section growth (simulation) |
//! | `repro fig2c`    | Figure 2(c) — serial-section growth (real threads) |
//! | `repro fig2d`    | Figure 2(d) — model accuracy vs simulation |
//! | `repro table2`   | Table II — extracted application parameters |
//! | `repro fig3`     | Figure 3 — scalability prediction to 256 cores |
//! | `repro table3`   | Table III — application classes |
//! | `repro fig4`     | Figure 4 — symmetric CMP design space |
//! | `repro fig5`     | Figure 5 — asymmetric CMP design space |
//! | `repro fig6`     | Figure 6 — reduction-fraction split |
//! | `repro fig7`     | Figure 7 — communication-aware model |
//! | `repro table4`   | Table IV — data-set sensitivity |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc_track;
pub mod calibrate_cmd;
pub mod cli;
pub mod dse_cmd;
pub mod figures;
pub mod job_cmd;
pub mod load_cmd;
pub mod serve_cmd;

pub use figures::*;
