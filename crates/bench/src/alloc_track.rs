//! Heap-allocation accounting for the throughput profile.
//!
//! [`CountingAllocator`] wraps the system allocator and counts every
//! allocation (and reallocation) plus the bytes requested. The `repro`
//! binary installs it as its global allocator; `repro dse --profile` then
//! reports the exact number of heap allocations each sweep pass performed —
//! the observable the zero-allocation hot path is held to.
//!
//! The counters are process-global atomics with relaxed ordering: they cost
//! two uncontended atomic increments per allocation, which is noise next to
//! the allocation itself, and reads are only ever approximate snapshots
//! around timed regions.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicI64 = AtomicI64::new(0);
static PEAK: AtomicI64 = AtomicI64::new(0);

/// Record `size` freshly allocated bytes in the live/peak gauges.
fn track_alloc(size: usize) {
    let live = LIVE.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    // Monotone max via CAS; races only ever under-report transiently.
    let mut peak = PEAK.load(Ordering::Relaxed);
    while live > peak {
        match PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(current) => peak = current,
        }
    }
}

/// A [`System`]-backed allocator that counts allocations.
///
/// Install in a binary with:
/// ```ignore
/// #[global_allocator]
/// static ALLOC: mp_bench::alloc_track::CountingAllocator = CountingAllocator;
/// ```
pub struct CountingAllocator;

// SAFETY: every method delegates to `System`; the counters do not affect
// allocator behaviour.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        track_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        track_alloc(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        LIVE.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        track_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

/// Number of heap allocations since process start (0 if no
/// [`CountingAllocator`] is installed in this binary).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Bytes requested from the heap since process start (0 if no
/// [`CountingAllocator`] is installed in this binary).
pub fn allocated_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

/// Bytes currently live on the heap (allocated minus freed; 0 if no
/// [`CountingAllocator`] is installed). The gauge the soak tests use to
/// assert the server's buffering stays *bounded*, not just that churn is
/// low.
pub fn live_bytes() -> i64 {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark of [`live_bytes`] since process start (or since the last
/// [`reset_peak`]).
pub fn peak_live_bytes() -> i64 {
    PEAK.load(Ordering::Relaxed)
}

/// Restart peak tracking from the current live level, so a test or a load
/// pass can measure the high-water mark of one region of interest without
/// inheriting an earlier region's peak.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Register the allocator's gauges with the process-wide mp-obs registry —
/// `alloc_live_bytes`, `alloc_peak_bytes` (both tracking [`reset_peak`]) and
/// `alloc_allocations` — sampled at snapshot time, so the serve `metrics`
/// verb and the soak tests read the exact numbers this module reports.
/// Idempotent: re-registering replaces the sampled gauges with equivalents.
pub fn register_metrics() {
    let registry = mp_obs::registry();
    registry.gauge_sampled("alloc_live_bytes", live_bytes);
    registry.gauge_sampled("alloc_peak_bytes", peak_live_bytes);
    registry.gauge_sampled("alloc_allocations", || allocation_count() as i64);
}

#[cfg(test)]
mod tests {
    // The allocator is only installed by binaries, so all the library can
    // test is that the counter API is callable and monotone.
    #[test]
    fn counters_are_monotone() {
        let a = super::allocation_count();
        let _v: Vec<u64> = (0..1000).collect();
        let b = super::allocation_count();
        assert!(b >= a);
    }

    #[test]
    fn registered_gauges_appear_in_the_registry_snapshot() {
        super::register_metrics();
        super::register_metrics(); // idempotent
        let snapshot = mp_obs::registry().snapshot();
        assert!(snapshot.gauge("alloc_live_bytes").is_some());
        assert!(snapshot.gauge("alloc_peak_bytes").is_some());
        assert!(snapshot.gauge("alloc_allocations").is_some());
    }

    #[test]
    fn live_gauge_apis_are_callable_without_an_installed_allocator() {
        // The allocator is only installed by binaries; the library can only
        // check the gauge plumbing is consistent.
        super::reset_peak();
        assert!(super::peak_live_bytes() >= super::live_bytes() || super::live_bytes() == 0);
    }
}
