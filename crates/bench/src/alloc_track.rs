//! Heap-allocation accounting for the throughput profile.
//!
//! [`CountingAllocator`] wraps the system allocator and counts every
//! allocation (and reallocation) plus the bytes requested. The `repro`
//! binary installs it as its global allocator; `repro dse --profile` then
//! reports the exact number of heap allocations each sweep pass performed —
//! the observable the zero-allocation hot path is held to.
//!
//! The counters are process-global atomics with relaxed ordering: they cost
//! two uncontended atomic increments per allocation, which is noise next to
//! the allocation itself, and reads are only ever approximate snapshots
//! around timed regions.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts allocations.
///
/// Install in a binary with:
/// ```ignore
/// #[global_allocator]
/// static ALLOC: mp_bench::alloc_track::CountingAllocator = CountingAllocator;
/// ```
pub struct CountingAllocator;

// SAFETY: every method delegates to `System`; the counters do not affect
// allocator behaviour.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Number of heap allocations since process start (0 if no
/// [`CountingAllocator`] is installed in this binary).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Bytes requested from the heap since process start (0 if no
/// [`CountingAllocator`] is installed in this binary).
pub fn allocated_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    // The allocator is only installed by binaries, so all the library can
    // test is that the counter API is callable and monotone.
    #[test]
    fn counters_are_monotone() {
        let a = super::allocation_count();
        let _v: Vec<u64> = (0..1000).collect();
        let b = super::allocation_count();
        assert!(b >= a);
    }
}
