//! The `repro serve` subcommand: run the resident sharded sweep service.
//!
//! Binds an `mp-serve` [`Server`] on a TCP address or Unix socket and serves
//! the line-delimited JSON query protocol (`sweep`, `top_k`, `pareto`,
//! `curve`, `stats`, `catalogue`, `ping`, `shutdown`) until a client sends
//! `shutdown`. Each shard owns a long-lived engine with its own lock-free
//! memoisation cache, so repeated queries are answered warm; the `measured`
//! backend additionally exposes its synthetic calibration catalogue so
//! clients can address applications by fingerprint id.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use mp_dse::fault::{FaultPlan, FaultyBackend};
use mp_model::catalogue::CatalogueRegistry;
use mp_serve::prelude::*;

use crate::cli;

/// The `serve` flags that consume a value token (see
/// [`crate::dse_cmd::VALUE_FLAGS`] for why this lives next to `parse`).
pub const VALUE_FLAGS: &[&str] = &[
    "--addr",
    "--socket",
    "--shards",
    "--threads",
    "--backend",
    "--batch",
    "--loops",
    "--executors",
    "--queue",
    "--cost-budget",
    "--jobs-dir",
    "--fail-nth",
    "--fault-latency-ms",
];

/// Options of one `serve` invocation.
pub struct Options {
    endpoint: Endpoint,
    shards: usize,
    /// Engine threads per shard; `None` = split the host's cores evenly.
    threads: Option<usize>,
    backend: String,
    batch_size: usize,
    use_cache: bool,
    /// Reactor event-loop threads (`0` = auto).
    event_loops: usize,
    /// Reactor executor threads (`0` = auto).
    executors: usize,
    /// Admission cap: sweeps in flight per shard before `busy`.
    queue_capacity: usize,
    /// Planner admission budget: estimated pending milliseconds per shard.
    cost_budget_ms: f64,
    /// Whether the planner coalesces overlapping in-flight sweeps
    /// (`--no-coalesce` turns it off for uncoalesced baselines).
    coalesce: bool,
    /// Whether idle workers steal queued work units from loaded shards
    /// (`--no-steal` pins units to their home shards — the static-bands
    /// baseline the skew benchmark compares against).
    steal: bool,
    /// Durable-job store: checkpoint manifests and cache segment spills
    /// live here and are restored on restart. `None` = jobs run
    /// in-memory only.
    jobs_dir: Option<PathBuf>,
    /// Fault drill: panic the Nth evaluated batch (0-based) once.
    fail_nth: Option<u64>,
    /// Fault drill: per-batch injected latency, milliseconds (widens the
    /// window the CI crash drill must land its `kill -9` in).
    fault_latency_ms: u64,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        endpoint: Endpoint::Tcp("127.0.0.1:7077".to_string()),
        shards: 4,
        threads: None,
        backend: "analytic".to_string(),
        batch_size: 1024,
        use_cache: true,
        event_loops: 0,
        executors: 0,
        queue_capacity: ServiceConfig::default().queue_capacity,
        cost_budget_ms: ServiceConfig::default().cost_budget_ms,
        coalesce: true,
        steal: true,
        jobs_dir: None,
        fail_nth: None,
        fault_latency_ms: 0,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let arg = arg.as_str();
        if VALUE_FLAGS.contains(&arg) {
            let value = iter.next().ok_or_else(|| format!("{arg} needs a value"))?.clone();
            match arg {
                "--addr" => options.endpoint = Endpoint::Tcp(value),
                "--socket" => options.endpoint = Endpoint::Unix(value.into()),
                "--shards" => options.shards = cli::parse_parallelism(arg, &value)?,
                "--threads" => options.threads = Some(cli::parse_parallelism(arg, &value)?),
                "--backend" => options.backend = value,
                "--batch" => {
                    options.batch_size = cli::parse_count(arg, &value, 1, cli::MAX_COUNT)?;
                }
                "--loops" => options.event_loops = cli::parse_parallelism(arg, &value)?,
                "--executors" => options.executors = cli::parse_parallelism(arg, &value)?,
                "--queue" => {
                    options.queue_capacity = cli::parse_count(arg, &value, 1, cli::MAX_COUNT)?;
                }
                "--cost-budget" => {
                    options.cost_budget_ms = value
                        .parse::<f64>()
                        .ok()
                        .filter(|ms| *ms > 0.0 && ms.is_finite())
                        .ok_or_else(|| {
                            format!("{arg} needs a positive budget in milliseconds, got `{value}`")
                        })?;
                }
                "--jobs-dir" => options.jobs_dir = Some(PathBuf::from(value)),
                "--fail-nth" => {
                    options.fail_nth = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| format!("{arg} needs a batch ordinal, got `{value}`"))?,
                    );
                }
                "--fault-latency-ms" => {
                    options.fault_latency_ms = value
                        .parse::<u64>()
                        .map_err(|_| format!("{arg} needs milliseconds, got `{value}`"))?;
                }
                other => unreachable!("{other} is listed in VALUE_FLAGS but unhandled"),
            }
        } else {
            match arg {
                "--no-cache" => options.use_cache = false,
                "--no-coalesce" => options.coalesce = false,
                "--no-steal" => options.steal = false,
                other => return Err(format!("unknown serve option `{other}`")),
            }
        }
    }
    Ok(options)
}

/// Build the service a parsed option set describes (shared with `--spawn`-
/// free in-process uses).
pub fn build_service(options: &Options) -> Result<SweepService, String> {
    let mut backend = cli::backend_by_name(&options.backend)?;
    if options.fail_nth.is_some() || options.fault_latency_ms > 0 {
        // Fault drill: wrap the backend in the deterministic injector. The
        // armed faults are bit-transparent outside their schedule, so a
        // drilled server's records stay identical to a plain one's.
        let plan = FaultPlan::new();
        if let Some(n) = options.fail_nth {
            plan.fail_batch(n);
        }
        if options.fault_latency_ms > 0 {
            plan.set_latency(std::time::Duration::from_millis(options.fault_latency_ms));
        }
        backend = Arc::new(FaultyBackend::new(backend, plan));
    }
    let registry = if options.backend == "measured" {
        // The same deterministic calibrations the backend was built from,
        // exposed as the id-addressable catalogue.
        CatalogueRegistry::from_calibrations(crate::dse_cmd::synthetic_calibrations())
    } else {
        CatalogueRegistry::new()
    };
    let host_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let threads_per_shard =
        options.threads.unwrap_or_else(|| (host_threads / options.shards).max(1));
    let config = ServiceConfig {
        shards: options.shards,
        threads_per_shard,
        batch_size: options.batch_size,
        use_cache: options.use_cache,
        queue_capacity: options.queue_capacity,
        cost_budget_ms: options.cost_budget_ms,
        cost_per_scenario_ms: None,
        coalesce: options.coalesce,
        steal: options.steal,
        force_scalar: false,
    };
    Ok(SweepService::new(backend, &config).with_registry(registry))
}

/// Entry point of the `serve` subcommand.
pub fn run(args: &[String]) -> ExitCode {
    let options = match parse(args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            eprintln!(
                "usage: repro serve [--addr HOST:PORT | --socket PATH] [--shards N] [--threads N] \
                 [--backend analytic|comm|sim|measured] [--batch N] [--no-cache] [--loops N] \
                 [--executors N] [--queue N] [--cost-budget MS] [--no-coalesce] [--no-steal] \
                 [--jobs-dir DIR] [--fail-nth N] [--fault-latency-ms MS]"
            );
            return ExitCode::FAILURE;
        }
    };
    let service = match build_service(&options) {
        Ok(service) => Arc::new(service),
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    // Durable jobs: the manager restores manifests and cache spills from
    // --jobs-dir (if any), runs submitted jobs in the background and must
    // outlive the serve loop — dropping it stops the runner.
    let _jobs =
        match JobManager::new(Arc::clone(&service), options.jobs_dir.clone(), JobConfig::default())
        {
            Ok(jobs) => jobs,
            Err(e) => {
                eprintln!("failed to initialise job store: {e}");
                return ExitCode::FAILURE;
            }
        };
    let server = match Server::bind_with(
        &options.endpoint,
        Arc::clone(&service),
        ServerConfig { event_loops: options.event_loops, executors: options.executors },
    ) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", options.endpoint);
            return ExitCode::FAILURE;
        }
    };
    // The `listening on` line is the readiness signal `repro load --spawn`
    // (and the CI smoke step) waits for — keep its shape stable.
    println!(
        "mp-serve listening on {} (backend={}, shards={}, threads/shard={}, cache={})",
        server.endpoint(),
        service.backend_name(),
        service.shards(),
        service.stats().shards.first().map(|s| s.threads).unwrap_or(0),
        if options.use_cache { "on" } else { "off" },
    );
    match server.run() {
        Ok(()) => {
            println!("mp-serve: shutdown requested, exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_covers_flags_and_rejects_bad_counts() {
        let options = parse(&[
            "--socket".to_string(),
            "/tmp/mp.sock".to_string(),
            "--shards".to_string(),
            "2".to_string(),
            "--threads".to_string(),
            "3".to_string(),
            "--backend".to_string(),
            "measured".to_string(),
            "--no-cache".to_string(),
        ])
        .unwrap();
        assert_eq!(options.endpoint, Endpoint::Unix("/tmp/mp.sock".into()));
        assert_eq!(options.shards, 2);
        assert_eq!(options.threads, Some(3));
        assert_eq!(options.backend, "measured");
        assert!(!options.use_cache);

        assert!(parse(&["--shards".to_string(), "0".to_string()]).is_err());
        assert!(parse(&["--threads".to_string(), "0".to_string()]).is_err());
        assert!(parse(&["--batch".to_string(), "0".to_string()]).is_err());
        assert!(parse(&["--loops".to_string(), "0".to_string()]).is_err());
        assert!(parse(&["--executors".to_string(), "0".to_string()]).is_err());
        assert!(parse(&["--queue".to_string(), "0".to_string()]).is_err());
        let sized = parse(&[
            "--loops".to_string(),
            "2".to_string(),
            "--executors".to_string(),
            "6".to_string(),
            "--queue".to_string(),
            "32".to_string(),
        ])
        .unwrap();
        assert_eq!((sized.event_loops, sized.executors, sized.queue_capacity), (2, 6, 32));
        assert!(sized.coalesce, "coalescing defaults on");
        assert!(sized.steal, "work stealing defaults on");
        assert!(!parse(&["--no-steal".to_string()]).unwrap().steal);

        let planned =
            parse(&["--cost-budget".to_string(), "1500".to_string(), "--no-coalesce".to_string()])
                .unwrap();
        assert_eq!(planned.cost_budget_ms, 1500.0);
        assert!(!planned.coalesce);
        assert!(parse(&["--cost-budget".to_string(), "0".to_string()]).is_err());
        assert!(parse(&["--cost-budget".to_string(), "soon".to_string()]).is_err());
        assert!(parse(&["--bogus".to_string()]).is_err());

        let durable = parse(&[
            "--jobs-dir".to_string(),
            "/tmp/mp-jobs".to_string(),
            "--fail-nth".to_string(),
            "7".to_string(),
            "--fault-latency-ms".to_string(),
            "3".to_string(),
        ])
        .unwrap();
        assert_eq!(durable.jobs_dir, Some(PathBuf::from("/tmp/mp-jobs")));
        assert_eq!(durable.fail_nth, Some(7));
        assert_eq!(durable.fault_latency_ms, 3);
        assert!(parse(&["--fail-nth".to_string(), "seven".to_string()]).is_err());
        assert!(parse(&["--fault-latency-ms".to_string(), "-1".to_string()]).is_err());
        assert!(
            build_service(&parse(&["--backend".to_string(), "nope".to_string()]).unwrap()).is_err()
        );
    }

    #[test]
    fn measured_service_exposes_its_catalogue() {
        let options = parse(&["--backend".to_string(), "measured".to_string()]).unwrap();
        let service = build_service(&options).unwrap();
        let entries = service.catalogue_entries();
        assert!(!entries.is_empty());
        assert!(entries.iter().all(|e| e.id.len() == 16));
    }

    #[test]
    fn clients_can_address_calibrations_by_catalogue_id() {
        use mp_dse::prelude::*;
        let options = parse(&[
            "--backend".to_string(),
            "measured".to_string(),
            "--shards".to_string(),
            "2".to_string(),
            "--threads".to_string(),
            "1".to_string(),
        ])
        .unwrap();
        let service = build_service(&options).unwrap();
        // Take two catalogue ids and sweep a space whose application axis is
        // assembled server-side from them.
        let ids: Vec<String> =
            service.catalogue_entries().iter().take(2).map(|e| e.id.clone()).collect();
        let axes = ScenarioSpace::new()
            .clear_designs()
            .add_symmetric_grid((0..24).map(|i| 1.0 + i as f64 * 5.0));
        let spec = SpaceSpec::Catalogue { ids: ids.clone(), space: axes.clone() };
        let resolved = service.resolve_space(&spec).unwrap();
        assert_eq!(resolved.apps().len(), 2);
        let result = service.sweep(&resolved, None).unwrap();
        assert_eq!(result.stats.scenarios, resolved.len());
        assert!(result.stats.valid > 0, "calibrated apps must evaluate");
        // Bit-identical to the direct engine sweep with the same backend.
        let backend = MeasuredBackend::new(crate::dse_cmd::synthetic_calibrations());
        let direct = Engine::new(1).sweep(&resolved, &backend, &SweepConfig::default());
        for (a, b) in result.records.iter().zip(direct.records.iter()) {
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
        }
    }
}
