//! Figures 4, 5 and 7: the CMP design-space study.
//!
//! All three figures sweep chip designs under a 256-BCE budget with
//! `perf(r) = sqrt(r)` for the eight application classes of Table III:
//!
//! * Figure 4 — symmetric CMPs: speedup versus per-core area `r`, for linear
//!   and logarithmic reduction-overhead growth.
//! * Figure 5 — asymmetric CMPs: speedup versus large-core area `rl`, for
//!   small-core areas `r ∈ {1, 4, 16}` (linear growth).
//! * Figure 7 — the communication-aware model (parallel merge, 2-D mesh) for
//!   the non-embarrassingly-parallel, moderate-constant class, symmetric and
//!   asymmetric.

use mp_dse::curves::{
    asymmetric_curve, asymmetric_curve_comm, symmetric_curve, symmetric_curve_comm,
};
use mp_model::chip::ChipBudget;
use mp_model::comm::CommModel;
use mp_model::extended::ExtendedModel;
use mp_model::growth::GrowthFunction;
use mp_model::params::AppClass;
use mp_model::perf::PerfModel;
use mp_profile::TableRow;

/// Small-core areas swept by the Figure 5 curves.
pub const FIG5_SMALL_CORE_AREAS: [f64; 3] = [1.0, 4.0, 16.0];

fn class_label(class: &AppClass, suffix: &str) -> String {
    format!("{}[{}]", class.name(), suffix)
}

/// Figure 4: symmetric-CMP speedup curves. One row per
/// (application class, growth function); the columns are per-core areas.
pub fn fig4_symmetric_design_space() -> Vec<TableRow> {
    let budget = ChipBudget::paper_default();
    let mut rows = Vec::new();
    for class in AppClass::table3_all() {
        for growth in [GrowthFunction::Linear, GrowthFunction::Logarithmic] {
            let model = ExtendedModel::new(class.params(), growth.clone(), PerfModel::Pollack);
            let curve = symmetric_curve(&model, budget, class_label(&class, growth.name()))
                .expect("paper classes are valid");
            let mut row = TableRow::new(curve.label.clone());
            for point in &curve.points {
                row = row.with(format!("r={}", point.area), point.speedup);
            }
            rows.push(row);
        }
    }
    rows
}

/// Figure 5: asymmetric-CMP speedup curves. One row per
/// (application class, small-core area); the columns are large-core areas.
pub fn fig5_asymmetric_design_space() -> Vec<TableRow> {
    let budget = ChipBudget::paper_default();
    let mut rows = Vec::new();
    for class in AppClass::table3_all() {
        let model = ExtendedModel::new(class.params(), GrowthFunction::Linear, PerfModel::Pollack);
        for r in FIG5_SMALL_CORE_AREAS {
            let curve = asymmetric_curve(&model, budget, r, class_label(&class, &format!("r={r}")))
                .expect("paper classes are valid");
            let mut row = TableRow::new(curve.label.clone());
            for point in &curve.points {
                row = row.with(format!("rl={}", point.area), point.speedup);
            }
            rows.push(row);
        }
    }
    rows
}

/// Figure 7: communication-aware model for the non-embarrassingly-parallel,
/// moderate-constant class. The `symmetric` row sweeps the per-core area; the
/// `asymmetric[r=..]` rows sweep the large-core area.
pub fn fig7_communication_model() -> Vec<TableRow> {
    let budget = ChipBudget::paper_default();
    let class = AppClass {
        embarrassingly_parallel: false,
        high_constant: false,
        high_reduction_overhead: true,
    };
    let model = CommModel::paper_figure7(class.params()).expect("valid Figure 7 parameters");

    let mut rows = Vec::new();
    let sym = symmetric_curve_comm(&model, budget, "symmetric").expect("valid sweep");
    let mut row = TableRow::new(sym.label.clone());
    for point in &sym.points {
        row = row.with(format!("r={}", point.area), point.speedup);
    }
    rows.push(row);

    for r in FIG5_SMALL_CORE_AREAS {
        let curve = asymmetric_curve_comm(&model, budget, r, format!("asymmetric[r={r}]"))
            .expect("valid sweep");
        let mut row = TableRow::new(curve.label.clone());
        for point in &curve.points {
            row = row.with(format!("rl={}", point.area), point.speedup);
        }
        rows.push(row);
    }
    rows
}

/// Headline comparison used in the paper's Section V-D/V-E discussion: best
/// symmetric vs best asymmetric speedup per application class under the
/// extended model, plus the ratio (the "ACMP advantage").
pub fn acmp_advantage_summary() -> Vec<TableRow> {
    let budget = ChipBudget::paper_default();
    AppClass::table3_all()
        .into_iter()
        .map(|class| {
            let model =
                ExtendedModel::new(class.params(), GrowthFunction::Linear, PerfModel::Pollack);
            let best_sym = mp_dse::curves::best_symmetric(&model, budget).unwrap();
            let (best_r, best_asym) = mp_dse::curves::best_asymmetric(&model, budget).unwrap();
            TableRow::new(class.name())
                .with("best_sym_speedup", best_sym.speedup)
                .with("best_sym_r", best_sym.area)
                .with("best_asym_speedup", best_asym.speedup)
                .with("best_asym_rl", best_asym.area)
                .with("best_asym_r", best_r)
                .with("acmp_advantage", best_asym.speedup / best_sym.speedup)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peak(row: &TableRow) -> (String, f64) {
        row.values
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|(c, v)| (c.clone(), *v))
            .unwrap()
    }

    #[test]
    fn fig4_has_sixteen_curves_over_nine_areas() {
        let rows = fig4_symmetric_design_space();
        assert_eq!(rows.len(), 8 * 2);
        for row in &rows {
            assert_eq!(row.values.len(), 9);
        }
    }

    #[test]
    fn fig4_linear_growth_never_peaks_at_single_bce_cores() {
        for row in fig4_symmetric_design_space().iter().filter(|r| r.label.contains("[linear]")) {
            let (col, _) = peak(row);
            assert_ne!(col, "r=1", "{} should not peak at r=1", row.label);
        }
    }

    #[test]
    fn fig4_paper_peaks_match() {
        let rows = fig4_symmetric_design_space();
        // (0.999, moderate constant, low overhead, Linear): 104.5 at r=4.
        let row = rows.iter().find(|r| r.label == "emb/mod-con/low-ovh[linear]").unwrap();
        let (col, val) = peak(row);
        assert_eq!(col, "r=4");
        assert!((val - 104.5).abs() < 1.5, "got {val}");
        // (0.999, moderate constant, high overhead, Linear): 67.1 at r=8.
        let row = rows.iter().find(|r| r.label == "emb/mod-con/high-ovh[linear]").unwrap();
        let (col, val) = peak(row);
        assert_eq!(col, "r=8");
        assert!((val - 67.1).abs() < 1.5, "got {val}");
    }

    #[test]
    fn fig4_log_growth_prefers_small_cores_for_embarrassingly_parallel() {
        let rows = fig4_symmetric_design_space();
        for label in ["emb/high-con/low-ovh[log]", "emb/mod-con/low-ovh[log]"] {
            let row = rows.iter().find(|r| r.label == label).unwrap();
            let (col, _) = peak(row);
            assert_eq!(col, "r=1", "{label}");
        }
    }

    #[test]
    fn fig5_low_overhead_prefers_unit_small_cores() {
        let rows = fig5_asymmetric_design_space();
        // For low reduction overhead the r=1 curve should reach the highest
        // speedup among the three small-core choices (paper Fig. 5(a/b/e/f)).
        for class in ["emb/high-con/low-ovh", "non-emb/high-con/low-ovh"] {
            let best_per_r: Vec<f64> = FIG5_SMALL_CORE_AREAS
                .iter()
                .map(|r| {
                    let row =
                        rows.iter().find(|row| row.label == format!("{class}[r={r}]")).unwrap();
                    peak(row).1
                })
                .collect();
            assert!(
                best_per_r[0] >= best_per_r[1] && best_per_r[0] >= best_per_r[2],
                "{class}: {best_per_r:?}"
            );
        }
    }

    #[test]
    fn fig5_high_overhead_nonemb_prefers_larger_small_cores() {
        let rows = fig5_asymmetric_design_space();
        // Paper Fig. 5(d)/(h): r = 4 beats r = 1.
        for class in ["non-emb/high-con/high-ovh", "non-emb/mod-con/high-ovh"] {
            let r1 = peak(rows.iter().find(|r| r.label == format!("{class}[r=1]")).unwrap()).1;
            let r4 = peak(rows.iter().find(|r| r.label == format!("{class}[r=4]")).unwrap()).1;
            assert!(r4 > r1, "{class}: r=4 ({r4}) should beat r=1 ({r1})");
        }
    }

    #[test]
    fn fig5_paper_values_match() {
        let rows = fig5_asymmetric_design_space();
        // Fig. 5(h) r=4: 43.3 ; r=1: 22.6. Fig. 5(d) r=4: 64.2.
        let v = peak(rows.iter().find(|r| r.label == "non-emb/mod-con/high-ovh[r=4]").unwrap()).1;
        assert!((v - 43.3).abs() < 1.5, "got {v}");
        let v = peak(rows.iter().find(|r| r.label == "non-emb/mod-con/high-ovh[r=1]").unwrap()).1;
        assert!((v - 22.6).abs() < 1.5, "got {v}");
        let v = peak(rows.iter().find(|r| r.label == "non-emb/high-con/high-ovh[r=4]").unwrap()).1;
        assert!((v - 64.2).abs() < 2.0, "got {v}");
    }

    #[test]
    fn fig7_peaks_match_paper() {
        let rows = fig7_communication_model();
        let sym = rows.iter().find(|r| r.label == "symmetric").unwrap();
        let (col, val) = peak(sym);
        assert_eq!(col, "r=8");
        assert!((val - 46.6).abs() < 2.0, "got {val}");

        let asym_r4 = rows.iter().find(|r| r.label == "asymmetric[r=4]").unwrap();
        let (_, val_r4) = peak(asym_r4);
        assert!((val_r4 - 51.6).abs() < 2.0, "got {val_r4}");
        let asym_r1 = rows.iter().find(|r| r.label == "asymmetric[r=1]").unwrap();
        let (_, val_r1) = peak(asym_r1);
        assert!(val_r4 > val_r1, "r=4 should edge out r=1");
    }

    #[test]
    fn acmp_advantage_shrinks_with_reduction_overhead() {
        let rows = acmp_advantage_summary();
        let adv = |label: &str| {
            rows.iter().find(|r| r.label == label).unwrap().get("acmp_advantage").unwrap()
        };
        assert!(adv("non-emb/high-con/low-ovh") > adv("non-emb/high-con/high-ovh"));
        assert!(adv("non-emb/mod-con/low-ovh") > adv("non-emb/mod-con/high-ovh"));
    }
}
