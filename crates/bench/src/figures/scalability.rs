//! Figure 3: scalability prediction with and without reduction overhead.
//!
//! For each Table II application the paper compares the speedup predicted by
//! plain Amdahl's Law (constant serial fraction) against the extended model
//! (reduction overhead growing linearly), scaling out to 256 baseline cores.

use mp_dse::curves::unit_core_curve;
use mp_model::amdahl::amdahl_speedup;
use mp_model::extended::ExtendedModel;
use mp_model::growth::GrowthFunction;
use mp_model::params::AppParams;
use mp_model::perf::PerfModel;
use mp_profile::TableRow;

/// Core counts reported by the Figure 3 curves.
pub const FIG3_CORES: [usize; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Figure 3: one row per (application, model) pair, columns are core counts.
/// The `amdahl` rows assume a constant serial section (paper Eq. 1/2 with
/// `r = 1`); the `with-reduction` rows use the extended model (Eq. 4).
pub fn fig3_scalability_prediction() -> Vec<TableRow> {
    let mut rows = Vec::new();
    for params in AppParams::table2_all() {
        let mut amdahl_row = TableRow::new(format!("{}-amdahl", params.name));
        for &p in &FIG3_CORES {
            amdahl_row =
                amdahl_row.with(format!("p={p}"), amdahl_speedup(params.f, p as f64).unwrap());
        }
        rows.push(amdahl_row);

        let model = ExtendedModel::new(params.clone(), GrowthFunction::Linear, PerfModel::Pollack);
        let mut ext_row = TableRow::new(format!("{}-with-reduction", params.name));
        for (p, speedup) in unit_core_curve(&model, 256).unwrap() {
            if FIG3_CORES.contains(&p) {
                ext_row = ext_row.with(format!("p={p}"), speedup);
            }
        }
        rows.push(ext_row);
    }
    rows
}

/// The ratio by which Amdahl's Law overestimates the 256-core speedup of each
/// application (a headline number of the paper's Section V-C).
pub fn fig3_overestimation_factors() -> Vec<TableRow> {
    AppParams::table2_all()
        .into_iter()
        .map(|params| {
            let amdahl = amdahl_speedup(params.f, 256.0).unwrap();
            let model =
                ExtendedModel::new(params.clone(), GrowthFunction::Linear, PerfModel::Pollack);
            let extended = model.speedup_unit_cores(256.0).unwrap();
            TableRow::new(params.name)
                .with("amdahl_256", amdahl)
                .with("with_reduction_256", extended)
                .with("overestimation", amdahl / extended)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_rows_keep_rising_to_256_cores() {
        let rows = fig3_scalability_prediction();
        for row in rows.iter().filter(|r| r.label.ends_with("amdahl")) {
            let mut prev = 0.0;
            for &p in &FIG3_CORES {
                let v = row.get(&format!("p={p}")).unwrap();
                assert!(v >= prev, "{} not monotone at p={p}", row.label);
                prev = v;
            }
            // Near-linear scaling at 256 cores for these tiny serial fractions.
            assert!(row.get("p=256").unwrap() > 190.0, "{}", row.label);
        }
    }

    #[test]
    fn extended_rows_taper_well_below_amdahl() {
        let rows = fig3_scalability_prediction();
        for params in AppParams::table2_all() {
            let amdahl = rows
                .iter()
                .find(|r| r.label == format!("{}-amdahl", params.name))
                .unwrap()
                .get("p=256")
                .unwrap();
            let extended = rows
                .iter()
                .find(|r| r.label == format!("{}-with-reduction", params.name))
                .unwrap()
                .get("p=256")
                .unwrap();
            assert!(
                extended < amdahl / 1.2,
                "{}: extended {extended} should be well below Amdahl {amdahl}",
                params.name
            );
        }
    }

    #[test]
    fn both_models_agree_at_one_core() {
        let rows = fig3_scalability_prediction();
        for row in &rows {
            assert!((row.get("p=1").unwrap() - 1.0).abs() < 1e-9, "{}", row.label);
        }
    }

    #[test]
    fn overestimation_factors_exceed_one() {
        for row in fig3_overestimation_factors() {
            assert!(row.get("overestimation").unwrap() > 1.2, "{}", row.label);
        }
    }
}
