//! Figure 2 and Table II: workload characterisation.
//!
//! The paper obtains these from SESC simulations of the MineBench applications
//! (plus a validation run on real hardware for Figure 2(c)). Here the
//! simulated side comes from `mp-cmpsim` phase programs derived from the
//! algorithm structure, and the "real hardware" side from actually running the
//! instrumented Rust workloads on the host machine.

use mp_cmpsim::program::ReductionKind;
use mp_cmpsim::{
    fuzzy_program, hop_program, kmeans_program, simulate_profile, Machine, WorkloadShape,
};
use mp_model::growth::GrowthFunction;
use mp_model::params::AppParams;
use mp_model::serial_time::serial_growth_factor;
use mp_profile::{extract_params, serial_growth, speedup_series, RunProfile, TableRow};
use mp_workloads::data::DatasetSpec;
use mp_workloads::runner::{run_sweep, ClusteringWorkload};

use super::CHARACTERIZATION_CORES;

/// The three applications of the characterisation study, in paper order.
pub const APPLICATIONS: [&str; 3] = ["kmeans", "fuzzy", "hop"];

/// Simulated profiles of one application across the characterisation core
/// counts (the paper's 1–16-core SESC runs).
pub fn simulated_profiles(app: &str) -> Vec<RunProfile> {
    CHARACTERIZATION_CORES
        .iter()
        .map(|&cores| {
            let machine = Machine::table1(cores);
            let program = match app {
                "kmeans" => {
                    kmeans_program(&WorkloadShape::kmeans_base(), ReductionKind::SerialLinear)
                }
                "fuzzy" => {
                    fuzzy_program(&WorkloadShape::kmeans_base(), ReductionKind::SerialLinear)
                }
                "hop" => hop_program(&WorkloadShape::hop_default(), ReductionKind::SerialLinear, 4),
                other => panic!("unknown application {other}"),
            };
            simulate_profile(&program, &machine)
        })
        .collect()
}

/// Figure 2(a): application speedup at 1–16 cores (simulation).
pub fn fig2a_scalability() -> Vec<TableRow> {
    APPLICATIONS
        .iter()
        .map(|app| {
            let profiles = simulated_profiles(app);
            let mut row = TableRow::new(*app);
            for (cores, speedup) in speedup_series(&profiles) {
                row = row.with(format!("p={cores}"), speedup);
            }
            row
        })
        .collect()
}

/// Figure 2(b): serial-section time normalised to one core (simulation).
pub fn fig2b_serial_growth() -> Vec<TableRow> {
    APPLICATIONS
        .iter()
        .map(|app| {
            let profiles = simulated_profiles(app);
            let mut row = TableRow::new(*app);
            for (cores, growth) in serial_growth(&profiles) {
                row = row.with(format!("p={cores}"), growth);
            }
            row
        })
        .collect()
}

/// Figure 2(c): serial-section growth measured on the host machine by running
/// the instrumented Rust workloads.
///
/// `thread_counts` selects the sweep (the paper uses 1–8 on a two-socket Xeon);
/// `reduced_size` shrinks the data sets so tests and CI stay fast while the
/// full-size run is available to the `repro` binary.
pub fn fig2c_real_serial_growth(thread_counts: &[usize], reduced_size: bool) -> Vec<TableRow> {
    let (cluster_spec, hop_spec) = if reduced_size {
        (DatasetSpec::new(4000, 9, 8, 0x5EED), DatasetSpec::new(6000, 3, 16, 0x401))
    } else {
        (DatasetSpec::base(), DatasetSpec::hop_default())
    };
    let cluster_data = cluster_spec.generate();
    // Disable early convergence for kmeans: with well-seeded data the run can
    // settle within a couple of iterations, leaving per-phase times too small
    // for stable wall-clock ratios. A negative threshold forces the full
    // iteration budget, so every thread count accumulates the same number of
    // merge phases and the growth ratio is well-conditioned even on busy hosts.
    let mut kmeans_cfg = mp_workloads::kmeans::KMeansConfig::for_dataset(&cluster_data);
    kmeans_cfg.threshold = -1.0;
    kmeans_cfg.max_iters = if reduced_size { 20 } else { 50 };
    let jobs = [
        ClusteringWorkload::kmeans(cluster_data).with_kmeans_config(kmeans_cfg),
        ClusteringWorkload::fuzzy(cluster_spec.generate()),
        ClusteringWorkload::hop(hop_spec.generate()),
    ];
    jobs.iter()
        .map(|job| {
            let profiles = run_sweep(job, thread_counts);
            let mut row = TableRow::new(job.kind().name());
            for (threads, growth) in serial_growth(&profiles) {
                row = row.with(format!("p={threads}"), growth);
            }
            row
        })
        .collect()
}

/// Figure 2(d): model accuracy — the serial-section growth predicted by the
/// extended model (using the parameters extracted from the single-run data)
/// divided by the growth observed in the simulation. Values near 1.0 mean the
/// model tracks the simulation.
pub fn fig2d_model_accuracy() -> Vec<TableRow> {
    APPLICATIONS
        .iter()
        .map(|app| {
            let profiles = simulated_profiles(app);
            let extracted = extract_params(&profiles, &GrowthFunction::Linear)
                .expect("characterisation sweep includes a single-core run");
            let params = extracted.to_app_params();
            let mut row = TableRow::new(*app);
            for (cores, observed) in serial_growth(&profiles) {
                if cores == 1 {
                    continue;
                }
                let predicted =
                    serial_growth_factor(&params, &GrowthFunction::Linear, cores as f64);
                row = row.with(format!("p={cores}"), predicted / observed);
            }
            row
        })
        .collect()
}

/// Table II: application parameters extracted from the simulated runs, next to
/// the values the paper reports.
pub fn table2_extracted_parameters() -> Vec<TableRow> {
    let paper: Vec<AppParams> = AppParams::table2_all();
    APPLICATIONS
        .iter()
        .zip(paper.iter())
        .map(|(app, reference)| {
            let profiles = simulated_profiles(app);
            let extracted = extract_params(&profiles, &GrowthFunction::Linear)
                .expect("characterisation sweep includes a single-core run");
            TableRow::new(*app)
                .with("serial_pct", extracted.serial_fraction * 100.0)
                .with("f", extracted.f)
                .with("fcon_pct", extracted.fcon * 100.0)
                .with("fred_pct", extracted.fred * 100.0)
                .with("fored_pct", extracted.fored * 100.0)
                .with("paper_serial_pct", reference.serial_fraction() * 100.0)
                .with("paper_fcon_pct", reference.split.fcon * 100.0)
                .with("paper_fred_pct", reference.split.fred * 100.0)
                .with("paper_fored_pct", reference.fored * 100.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2a_kmeans_and_fuzzy_scale_nearly_linearly() {
        let rows = fig2a_scalability();
        assert_eq!(rows.len(), 3);
        for row in rows.iter().filter(|r| r.label != "hop") {
            let s16 = row.get("p=16").unwrap();
            assert!(s16 > 14.0, "{} 16-core speedup {s16}", row.label);
        }
        let hop16 = rows.iter().find(|r| r.label == "hop").unwrap().get("p=16").unwrap();
        assert!(hop16 > 11.0 && hop16 < 15.5, "hop speedup {hop16}");
    }

    #[test]
    fn fig2b_serial_sections_grow() {
        for row in fig2b_serial_growth() {
            let g1 = row.get("p=1").unwrap();
            let g16 = row.get("p=16").unwrap();
            assert!((g1 - 1.0).abs() < 1e-9);
            assert!(g16 > 2.0, "{}: serial growth {g16}", row.label);
        }
    }

    #[test]
    fn fig2c_real_runs_show_growth_too() {
        // Small data sets and few threads keep the test fast; the qualitative
        // claim (the serial section grows with threads) must still hold. The
        // measurement is wall-clock on possibly oversubscribed hardware — a
        // single-core CI host runs p=4 merges under heavy scheduler noise —
        // so the claim is accumulated per workload across attempts: each
        // workload must show growth in *some* attempt, rather than every
        // workload in the *same* attempt (one noisy workload per round
        // otherwise restarts the whole measurement).
        let mut grew = [false; 3];
        let mut last: Vec<f64> = vec![0.0; 3];
        for _attempt in 0..6 {
            let rows = fig2c_real_serial_growth(&[1, 2, 4], true);
            assert_eq!(rows.len(), 3);
            for (index, row) in rows.iter().enumerate() {
                let g1 = row.get("p=1").unwrap();
                let g4 = row.get("p=4").unwrap();
                assert!((g1 - 1.0).abs() < 1e-9);
                grew[index] |= g4 > 1.0;
                last[index] = g4;
            }
            if grew.iter().all(|&g| g) {
                return;
            }
        }
        panic!("a workload never showed serial-section growth at p=4: grew={grew:?} last={last:?}");
    }

    #[test]
    fn fig2d_model_tracks_simulation_within_tolerance() {
        // kmeans and fuzzy follow an almost exactly linear growth, so the
        // linear-growth model tracks them closely. hop's merge is super-linear
        // in the simulation (as in the paper), so a linear fit over- and
        // under-shoots more at the ends of the range.
        for row in fig2d_model_accuracy() {
            // Our simulated hop merge is more strongly super-linear than the
            // paper's measurement (the partial group tables fall out of the L1
            // between 8 and 16 cores), so the linear-growth prediction deviates
            // further for hop; see EXPERIMENTS.md.
            let tolerance = if row.label == "hop" { 1.6 } else { 0.35 };
            for (col, ratio) in &row.values {
                assert!(
                    (*ratio - 1.0).abs() < tolerance,
                    "{} {col}: accuracy ratio {ratio} too far from 1",
                    row.label
                );
            }
        }
    }

    #[test]
    fn table2_parameters_have_paper_magnitudes() {
        let rows = table2_extracted_parameters();
        for row in &rows {
            let serial = row.get("serial_pct").unwrap();
            assert!(serial < 0.5, "{}: serial fraction should be far below 1 %", row.label);
            let f = row.get("f").unwrap();
            assert!(f > 0.99, "{}: parallel fraction {f}", row.label);
            let fcon = row.get("fcon_pct").unwrap();
            let fred = row.get("fred_pct").unwrap();
            assert!((fcon + fred - 100.0).abs() < 1.0);
        }
        // hop has the largest serial fraction of the three, as in the paper.
        let serial = |label: &str| {
            rows.iter().find(|r| r.label == label).unwrap().get("serial_pct").unwrap()
        };
        assert!(serial("hop") > serial("kmeans"));
        assert!(serial("kmeans") > serial("fuzzy"));
    }
}
