//! One module per reproduced table / figure.
//!
//! Every generator is a pure function returning `Vec<TableRow>` (plus, where
//! useful, richer structures) so it can be called from the `repro` binary, the
//! Criterion benchmarks and the integration tests alike.

pub mod characterization;
pub mod design_space;
pub mod scalability;
pub mod tables;

pub use characterization::{
    fig2a_scalability, fig2b_serial_growth, fig2c_real_serial_growth, fig2d_model_accuracy,
    simulated_profiles, table2_extracted_parameters,
};
pub use design_space::{
    fig4_symmetric_design_space, fig5_asymmetric_design_space, fig7_communication_model,
};
pub use scalability::fig3_scalability_prediction;
pub use tables::{
    fig6_reduction_split, table1_machine_config, table3_application_classes,
    table4_dataset_sensitivity,
};

/// The core counts used by the characterisation experiments (the paper's
/// simulations stop at 16 cores).
pub const CHARACTERIZATION_CORES: [usize; 5] = [1, 2, 4, 8, 16];
