//! Table I, Table III, Table IV and the Figure 6 split.

use mp_cmpsim::program::ReductionKind;
use mp_cmpsim::{
    fuzzy_program, hop_program, kmeans_program, simulate_profile, Machine, MachineConfig,
    WorkloadShape,
};
use mp_model::growth::GrowthFunction;
use mp_model::params::{AppClass, AppParams, DatasetVariant};
use mp_profile::{extract_params, RunProfile, TableRow};

use super::CHARACTERIZATION_CORES;

/// Table I: the simulated machine configuration.
pub fn table1_machine_config() -> Vec<TableRow> {
    let c = MachineConfig::table1_baseline();
    vec![
        TableRow::new("ops-per-cycle").with("value", c.ops_per_cycle),
        TableRow::new("l1-data-kb").with("value", c.l1_bytes as f64 / 1024.0),
        TableRow::new("l1-latency-cycles").with("value", c.l1_latency),
        TableRow::new("l2-mb").with("value", c.l2_bytes as f64 / (1024.0 * 1024.0)),
        TableRow::new("l2-latency-cycles").with("value", c.l2_latency),
        TableRow::new("memory-latency-cycles").with("value", c.mem_latency),
        TableRow::new("coherence-latency-cycles").with("value", c.coherence_latency),
        TableRow::new("line-bytes").with("value", c.line_bytes as f64),
        TableRow::new("noc-hop-latency-cycles").with("value", c.noc_hop_latency),
        TableRow::new("clock-ghz").with("value", c.frequency_hz / 1e9),
    ]
}

/// Table III: the eight application classes and their parameters.
pub fn table3_application_classes() -> Vec<TableRow> {
    AppClass::table3_all()
        .into_iter()
        .map(|class| {
            TableRow::new(class.name())
                .with("f", class.f())
                .with("fcon_pct", class.fcon() * 100.0)
                .with("fored_pct", class.fored() * 100.0)
        })
        .collect()
}

/// Figure 6 (and Figure 1): the split of the serial fraction for the Table II
/// applications, expressed as percentages of the serial time, plus the
/// communication-model split (computation/communication halves of the
/// reduction fraction).
pub fn fig6_reduction_split() -> Vec<TableRow> {
    AppParams::table2_all()
        .into_iter()
        .map(|p| {
            TableRow::new(p.name.clone())
                .with("fcon_pct", p.split.fcon * 100.0)
                .with("fred_pct", p.split.fred * 100.0)
                .with("fcomp_pct", p.split.fred * 50.0)
                .with("fcomm_pct", p.split.fred * 50.0)
                .with("fored_pct", p.fored * 100.0)
        })
        .collect()
}

/// Simulated characterisation sweep for an arbitrary data-set shape (used by
/// the Table IV sensitivity study).
fn profiles_for_shape(app: &str, shape: &WorkloadShape) -> Vec<RunProfile> {
    CHARACTERIZATION_CORES
        .iter()
        .map(|&cores| {
            let machine = Machine::table1(cores);
            let program = match app {
                "kmeans" => kmeans_program(shape, ReductionKind::SerialLinear),
                "fuzzy" => fuzzy_program(shape, ReductionKind::SerialLinear),
                "hop" => hop_program(shape, ReductionKind::SerialLinear, 4),
                other => panic!("unknown application {other}"),
            };
            simulate_profile(&program, &machine)
        })
        .collect()
}

/// Table IV: data-set sensitivity. Every paper variant is re-simulated with
/// its N/D/C attributes and the extracted `f`, `fred`, `fcon` are reported
/// next to the paper's values.
pub fn table4_dataset_sensitivity() -> Vec<TableRow> {
    DatasetVariant::table4_all()
        .into_iter()
        .map(|variant| {
            let shape = if variant.application == "hop" {
                let mut s = if variant.points > 100_000 {
                    WorkloadShape::hop_medium()
                } else {
                    WorkloadShape::hop_default()
                };
                s.points = variant.points;
                s
            } else {
                WorkloadShape::from_attributes(variant.points, variant.dims, variant.centers)
            };
            let profiles = profiles_for_shape(&variant.application, &shape);
            let extracted = extract_params(&profiles, &GrowthFunction::Linear)
                .expect("sweep includes a single-core run");
            TableRow::new(variant.label.clone())
                .with("f", extracted.f)
                .with("fred_pct", extracted.fred * 100.0)
                .with("fcon_pct", extracted.fcon * 100.0)
                .with("paper_f", variant.f)
                .with("paper_fred_pct", variant.fred * 100.0)
                .with("paper_fcon_pct", variant.fcon * 100.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_the_cache_hierarchy() {
        let rows = table1_machine_config();
        assert!(rows.iter().any(|r| r.label == "l1-data-kb" && r.get("value") == Some(64.0)));
        assert!(rows.iter().any(|r| r.label == "l2-mb" && r.get("value") == Some(4.0)));
    }

    #[test]
    fn table3_has_eight_rows_with_paper_values() {
        let rows = table3_application_classes();
        assert_eq!(rows.len(), 8);
        for row in &rows {
            let f = row.get("f").unwrap();
            assert!(f == 0.999 || f == 0.99);
            let fcon = row.get("fcon_pct").unwrap();
            assert!(fcon == 90.0 || fcon == 60.0);
            let fored = row.get("fored_pct").unwrap();
            assert!(fored == 10.0 || fored == 80.0);
        }
    }

    #[test]
    fn fig6_split_sums_to_one_hundred_percent() {
        for row in fig6_reduction_split() {
            let fcon = row.get("fcon_pct").unwrap();
            let fred = row.get("fred_pct").unwrap();
            assert!((fcon + fred - 100.0).abs() < 1e-9, "{}", row.label);
            let fcomp = row.get("fcomp_pct").unwrap();
            let fcomm = row.get("fcomm_pct").unwrap();
            assert!((fcomp + fcomm - fred).abs() < 1e-9, "{}", row.label);
        }
    }

    #[test]
    fn table4_point_scaling_increases_parallel_fraction() {
        let rows = table4_dataset_sensitivity();
        let f = |label: &str| rows.iter().find(|r| r.label == label).unwrap().get("f").unwrap();
        // Scaling the number of points increases f (merge work is independent
        // of N); scaling dims/centres leaves it roughly unchanged.
        assert!(f("kmeans-point") > f("kmeans-dim"));
        assert!(f("fuzzy-point") >= f("fuzzy-dim"));
        // All parallel fractions stay very close to 1, as in the paper.
        for row in &rows {
            assert!(row.get("f").unwrap() > 0.99, "{}", row.label);
        }
    }

    #[test]
    fn table4_has_all_paper_variants() {
        let rows = table4_dataset_sensitivity();
        assert_eq!(rows.len(), 10);
        for label in ["kmeans-base", "fuzzy-point", "hop-med"] {
            assert!(rows.iter().any(|r| r.label == label), "{label} missing");
        }
    }
}
