//! # mp-runtime — the phase-graph execution runtime
//!
//! The reproduced paper's whole argument rests on measuring the phase
//! structure of real workloads — parallel sections, merging (reduction)
//! phases and constant serial work — and feeding the measured fractions into
//! scalability models. This crate makes that structure a first-class runtime
//! concept instead of a per-workload convention:
//!
//! * [`graph`] — a workload *declares* its phase graph ([`PhaseGraph`]):
//!   init region, a repeated body of parallel kernels + reduction + constant
//!   serial work, and a finalize region, with per-node thread-scaling
//!   declarations (full, limited, serial).
//! * [`exec`] — the [`PhaseExec`] executor runs each phase with the right
//!   fork-join primitive, checks it against the declaration, and records
//!   per-phase **and per-thread** timings automatically.
//! * [`scheduler`] — [`PhaseScheduler`] drives the declared loop
//!   (init → body* → finalize) and streams the instrumented records into any
//!   [`mp_profile::stream::RecordSink`]: a [`mp_profile::Profiler`] for full
//!   profiles, or a [`mp_profile::StreamingExtractor`] that folds them
//!   straight into model parameters.
//!
//! Any type implementing [`PhasedWorkload`] is a drop-in scenario for the
//! characterisation sweep, the streaming parameter extraction and — through
//! `mp_model::calibrate` — the design-space exploration engine.
//!
//! ## Example
//!
//! ```
//! use mp_runtime::prelude::*;
//! use mp_par::ReductionStrategy;
//!
//! /// Parallel dot-product with an explicit merging phase.
//! struct Dot(Vec<f64>, Vec<f64>);
//!
//! impl PhasedWorkload for Dot {
//!     type State = f64;
//!     type Output = f64;
//!
//!     fn name(&self) -> &str { "dot" }
//!
//!     fn graph(&self) -> PhaseGraph {
//!         PhaseGraph::builder(1)
//!             .parallel("multiply")
//!             .reduction("merge")
//!             .serial("store")
//!             .build()
//!             .unwrap()
//!     }
//!
//!     fn init(&self, _exec: &PhaseExec<'_>) -> f64 { 0.0 }
//!
//!     fn iteration(&self, state: &mut f64, exec: &PhaseExec<'_>, _iter: usize) -> Control {
//!         let partials = exec.parallel("multiply", self.0.len(), |_ctx, range| {
//!             vec![range.map(|i| self.0[i] * self.1[i]).sum::<f64>()]
//!         });
//!         let (merged, _) = exec.reduce("merge", &partials, ReductionStrategy::TreeLog);
//!         exec.serial("store", || *state = merged[0]);
//!         Control::Break
//!     }
//!
//!     fn finalize(&self, state: f64, _exec: &PhaseExec<'_>) -> f64 { state }
//! }
//!
//! let x: Vec<f64> = (0..64).map(|i| i as f64).collect();
//! let (outcome, profile) = PhaseScheduler::new(4).run_profiled(&Dot(x.clone(), x));
//! assert_eq!(outcome.output, (0..64).map(|i| (i * i) as f64).sum::<f64>());
//! assert!(profile.parallel_time() >= 0.0 && profile.reduction_time() >= 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod exec;
pub mod graph;
pub mod scheduler;

/// Commonly used items.
pub mod prelude {
    pub use crate::exec::PhaseExec;
    pub use crate::graph::{GraphError, PhaseGraph, PhaseNodeSpec, Region, Scaling};
    pub use crate::scheduler::{Control, PhaseScheduler, PhasedWorkload, RunOutcome};
}

pub use prelude::*;
