//! The instrumented phase executor.
//!
//! A [`PhaseExec`] is the only handle a phased workload receives to run its
//! phases. Every call
//!
//! 1. checks the phase against the workload's declared
//!    [`PhaseGraph`](crate::graph::PhaseGraph) region (label, kind and
//!    scaling must match, in declaration order),
//! 2. executes the phase with the right fork-join primitive,
//! 3. times it — including one sample per worker thread for fork-join phases
//!    — and streams a [`PhaseRecord`] into the scheduler's [`RecordSink`].
//!
//! The workload never touches a timer or a profiler; the conventions the
//! paper's accounting depends on (what counts as parallel vs. reduction vs.
//! constant serial time) live here, once.

use std::cell::Cell;
use std::time::Instant;

use mp_par::pool::{parallel_partials, ThreadCtx};
use mp_par::reduce::{reduce_elementwise, ReduceStats, ReductionStrategy};
use mp_profile::stream::RecordSink;
use mp_profile::{PhaseKind, PhaseRecord};

use crate::graph::{PhaseNodeSpec, Region, Scaling};

/// Executes and instruments the phases of one graph region.
pub struct PhaseExec<'a> {
    sink: &'a dyn RecordSink,
    threads: usize,
    region: Region,
    expected: Vec<&'a PhaseNodeSpec>,
    cursor: Cell<usize>,
}

impl<'a> PhaseExec<'a> {
    pub(crate) fn new(
        sink: &'a dyn RecordSink,
        threads: usize,
        region: Region,
        expected: Vec<&'a PhaseNodeSpec>,
    ) -> Self {
        assert!(threads > 0, "threads must be positive");
        PhaseExec { sink, threads, region, expected, cursor: Cell::new(0) }
    }

    /// The scheduler's thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The region this executor serves.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Advance the conformance cursor to the declared node matching the
    /// executed phase; panics when the execution deviates from the graph.
    fn expect(&self, kind: PhaseKind, label: &str) -> &PhaseNodeSpec {
        let at = self.cursor.get();
        let Some(node) = self.expected.get(at) else {
            panic!(
                "phase `{label}` executed after the last declared node of the {} region",
                self.region.name()
            );
        };
        assert!(
            node.label == label,
            "phase `{label}` executed out of order in the {} region: the graph declares `{}` next",
            self.region.name(),
            node.label
        );
        assert!(
            node.kind == kind,
            "phase `{label}` executed as {:?} but declared as {:?}",
            kind,
            node.kind
        );
        self.cursor.set(at + 1);
        node
    }

    fn record(&self, kind: PhaseKind, label: &str, seconds: f64, threads: usize) {
        self.sink.record(PhaseRecord::new(kind, label.to_owned(), seconds, threads));
    }

    /// Run a declared init phase (setup excluded from the paper's
    /// accounting).
    pub fn init<T>(&self, label: &str, body: impl FnOnce() -> T) -> T {
        self.expect(PhaseKind::Init, label);
        self.timed_serial(PhaseKind::Init, label, body)
    }

    /// Run a declared fully-scaling parallel phase: fork-join over chunks of
    /// `0..len` with one partial result per thread (in thread order), timing
    /// every worker individually.
    pub fn parallel<T, F>(&self, label: &str, len: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(ThreadCtx, std::ops::Range<usize>) -> T + Sync,
    {
        let node = self.expect(PhaseKind::Parallel, label);
        assert!(
            node.scaling == Scaling::Full,
            "phase `{label}` is declared with limited scaling; use `parallel_limited` or `parallel_task`"
        );
        self.fork_join(label, self.threads, len, f)
    }

    /// Run a declared limited-parallelism phase: like [`PhaseExec::parallel`]
    /// but capped at the thread count the graph declares for this node.
    pub fn parallel_limited<T, F>(&self, label: &str, len: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(ThreadCtx, std::ops::Range<usize>) -> T + Sync,
    {
        let node = self.expect(PhaseKind::Parallel, label);
        let Scaling::Limited(cap) = node.scaling else {
            panic!("phase `{label}` is not declared with limited scaling");
        };
        self.fork_join(label, self.threads.min(cap), len, f)
    }

    /// Run a declared parallel phase whose kernel manages its own threads
    /// (e.g. a recursive tree build). The closure receives the effective
    /// thread count — the scheduler's, clamped by a `Limited` declaration —
    /// and the phase is timed as a whole.
    pub fn parallel_task<T>(&self, label: &str, body: impl FnOnce(usize) -> T) -> T {
        let node = self.expect(PhaseKind::Parallel, label);
        let effective = match node.scaling {
            Scaling::Full => self.threads,
            Scaling::Limited(cap) => self.threads.min(cap),
            Scaling::Serial => 1,
        };
        if !self.sink.is_live() {
            return body(effective);
        }
        let start = Instant::now();
        let out = body(effective);
        self.record(PhaseKind::Parallel, label, start.elapsed().as_secs_f64(), effective);
        out
    }

    /// Run the declared merging phase over element-wise partials with the
    /// given [`ReductionStrategy`], recording the merge as reduction time.
    pub fn reduce(
        &self,
        label: &str,
        partials: &[Vec<f64>],
        strategy: ReductionStrategy,
    ) -> (Vec<f64>, ReduceStats) {
        self.expect(PhaseKind::Reduction, label);
        // The serial-linear merge runs on the calling thread; the tree and
        // privatised merges fan out over the scheduler's workers, and the
        // record reflects that.
        let threads = match strategy {
            ReductionStrategy::SerialLinear => 1,
            ReductionStrategy::TreeLog | ReductionStrategy::ParallelPrivatized => self.threads,
        };
        if !self.sink.is_live() {
            return reduce_elementwise(partials, strategy, self.threads);
        }
        let start = Instant::now();
        let out = reduce_elementwise(partials, strategy, self.threads);
        self.record(PhaseKind::Reduction, label, start.elapsed().as_secs_f64(), threads);
        out
    }

    /// Run a declared merging phase with a custom combine (e.g. hashed group
    /// tables); the whole closure is recorded as reduction time.
    pub fn reduce_with<T>(&self, label: &str, body: impl FnOnce() -> T) -> T {
        self.expect(PhaseKind::Reduction, label);
        self.timed_serial(PhaseKind::Reduction, label, body)
    }

    /// Run a declared constant serial phase.
    pub fn serial<T>(&self, label: &str, body: impl FnOnce() -> T) -> T {
        let kind = match self.region {
            Region::Init => PhaseKind::Init,
            _ => PhaseKind::SerialConstant,
        };
        self.expect(kind, label);
        self.timed_serial(kind, label, body)
    }

    fn timed_serial<T>(&self, kind: PhaseKind, label: &str, body: impl FnOnce() -> T) -> T {
        if !self.sink.is_live() {
            return body();
        }
        let start = Instant::now();
        let out = body();
        self.record(kind, label, start.elapsed().as_secs_f64(), 1);
        out
    }

    /// Instrumented fork-join: wall-clock for the whole region plus one
    /// duration sample per worker.
    fn fork_join<T, F>(&self, label: &str, threads: usize, len: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(ThreadCtx, std::ops::Range<usize>) -> T + Sync,
    {
        if !self.sink.is_live() {
            return parallel_partials(threads, len, f);
        }
        let start = Instant::now();
        let timed: Vec<(T, f64)> = parallel_partials(threads, len, |ctx, range| {
            let thread_start = Instant::now();
            let out = f(ctx, range);
            (out, thread_start.elapsed().as_secs_f64())
        });
        let seconds = start.elapsed().as_secs_f64();
        let mut results = Vec::with_capacity(timed.len());
        let mut samples = Vec::with_capacity(timed.len());
        for (out, sample) in timed {
            results.push(out);
            samples.push(sample);
        }
        self.sink.record(
            PhaseRecord::new(PhaseKind::Parallel, label.to_owned(), seconds, threads)
                .with_thread_seconds(samples),
        );
        results
    }

    /// Number of declared nodes of this region that were actually executed.
    pub fn executed(&self) -> usize {
        self.cursor.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PhaseGraph;
    use mp_profile::Profiler;

    fn graph() -> PhaseGraph {
        PhaseGraph::builder(3)
            .init("setup")
            .parallel("work")
            .parallel_limited("limited", 2)
            .reduction("merge")
            .serial("check")
            .build()
            .unwrap()
    }

    fn body_exec<'a>(g: &'a PhaseGraph, sink: &'a Profiler, threads: usize) -> PhaseExec<'a> {
        PhaseExec::new(sink, threads, Region::Body, g.region_nodes(Region::Body))
    }

    #[test]
    fn phases_record_with_per_thread_samples() {
        let g = graph();
        let profiler = Profiler::new("t", 4);
        let exec = body_exec(&g, &profiler, 4);
        let partials = exec.parallel("work", 100, |_ctx, range| range.len() as f64);
        assert_eq!(partials.len(), 4);
        assert_eq!(partials.iter().sum::<f64>(), 100.0);
        let profile = profiler.finish();
        assert_eq!(profile.records.len(), 1);
        let record = &profile.records[0];
        assert_eq!(record.kind, PhaseKind::Parallel);
        assert_eq!(record.thread_seconds.len(), 4);
        assert!(record.imbalance().is_some());
    }

    #[test]
    fn limited_phase_caps_the_thread_count() {
        let g = graph();
        let profiler = Profiler::new("t", 8);
        let exec = body_exec(&g, &profiler, 8);
        exec.parallel("work", 8, |_ctx, r| r.len());
        let partials = exec.parallel_limited("limited", 8, |_ctx, r| r.len());
        assert_eq!(partials.len(), 2, "cap of 2 must override 8 scheduler threads");
        let profile = profiler.finish();
        assert_eq!(profile.records[1].threads, 2);
    }

    #[test]
    fn out_of_order_execution_panics() {
        let g = graph();
        let profiler = Profiler::new("t", 2);
        let exec = body_exec(&g, &profiler, 2);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.reduce_with("merge", || 0);
        }));
        assert!(err.is_err(), "merge before work must violate the graph");
    }

    #[test]
    fn undeclared_phase_panics() {
        let g = graph();
        let profiler = Profiler::new("t", 2);
        let exec = body_exec(&g, &profiler, 2);
        exec.parallel("work", 4, |_ctx, r| r.len());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.parallel("not-declared", 4, |_ctx, r| r.len());
        }));
        assert!(err.is_err());
    }

    #[test]
    fn kind_mismatch_panics() {
        let g = graph();
        let profiler = Profiler::new("t", 2);
        let exec = body_exec(&g, &profiler, 2);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.serial("work", || 0);
        }));
        assert!(err.is_err(), "declared-parallel phase must not run as serial");
    }

    #[test]
    fn dead_sink_skips_instrumentation_but_runs_bodies() {
        let g = graph();
        let profiler = Profiler::disabled();
        let exec = body_exec(&g, &profiler, 2);
        let partials = exec.parallel("work", 10, |_ctx, r| r.len());
        assert_eq!(partials.iter().sum::<usize>(), 10);
        assert_eq!(profiler.record_count(), 0);
    }

    #[test]
    fn reduce_merges_and_counts() {
        let g = graph();
        let profiler = Profiler::new("t", 3);
        let exec = body_exec(&g, &profiler, 3);
        let partials = exec.parallel("work", 30, |_ctx, range| vec![range.len() as f64]);
        exec.parallel_limited("limited", 0, |_ctx, _r| ());
        let (merged, stats) = exec.reduce("merge", &partials, ReductionStrategy::SerialLinear);
        assert_eq!(merged, vec![30.0]);
        assert_eq!(stats.partials, 3);
        let sum: f64 = exec.serial("check", || merged.iter().sum());
        assert_eq!(sum, 30.0);
        let profile = profiler.finish();
        assert!(profile.reduction_time() >= 0.0);
        assert_eq!(profile.records.len(), 4);
    }

    #[test]
    fn parallel_task_receives_effective_threads() {
        let g = graph();
        let profiler = Profiler::new("t", 8);
        let exec = body_exec(&g, &profiler, 8);
        exec.parallel("work", 1, |_ctx, r| r.len());
        let seen = exec.parallel_task("limited", |threads| threads);
        assert_eq!(seen, 2);
    }
}
