//! Declarative phase graphs.
//!
//! A [`PhaseGraph`] is a workload's declaration of its execution structure in
//! the paper's terms (Figure 1): an **init** region, a **body** region of
//! parallel kernels followed by a merging (reduction) phase and constant
//! serial work — repeated up to an iteration limit — and a **finalize**
//! region. The scheduler validates the declaration once and then checks every
//! executed phase against it, so a workload cannot silently drift from its
//! declared accounting (e.g. time a merge as parallel work).

use serde::{Deserialize, Serialize};

use mp_profile::PhaseKind;

/// The region of the graph a phase node belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// One-time setup, excluded from the paper's accounting.
    Init,
    /// The repeated region: parallel kernels, merge, constant serial work.
    Body,
    /// One-time teardown/reporting after the loop exits.
    Finalize,
}

impl Region {
    /// Short label for error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Region::Init => "init",
            Region::Body => "body",
            Region::Finalize => "finalize",
        }
    }
}

/// How a parallel node scales with the scheduler's thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scaling {
    /// Runs on one thread (init, reduction and serial-constant nodes).
    Serial,
    /// Uses every scheduler thread.
    Full,
    /// Uses at most this many threads regardless of the scheduler's count —
    /// MineBench's limited-parallelism kernels (hop's tree build).
    Limited(usize),
}

/// One declared phase of a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseNodeSpec {
    /// Which region the node belongs to.
    pub region: Region,
    /// The accounting classification of the node.
    pub kind: PhaseKind,
    /// The label the executed phase must carry.
    pub label: String,
    /// Thread-scaling behaviour.
    pub scaling: Scaling,
}

/// A validated phase-graph declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseGraph {
    nodes: Vec<PhaseNodeSpec>,
    max_iterations: usize,
}

/// An invalid phase-graph declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphError(pub String);

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid phase graph: {}", self.0)
    }
}

impl std::error::Error for GraphError {}

impl PhaseGraph {
    /// Start declaring a graph whose body repeats at most `max_iterations`
    /// times.
    pub fn builder(max_iterations: usize) -> PhaseGraphBuilder {
        PhaseGraphBuilder { nodes: Vec::new(), max_iterations }
    }

    /// All declared nodes, in declaration order.
    pub fn nodes(&self) -> &[PhaseNodeSpec] {
        &self.nodes
    }

    /// The nodes of one region, in declaration order.
    pub fn region_nodes(&self, region: Region) -> Vec<&PhaseNodeSpec> {
        self.nodes.iter().filter(|n| n.region == region).collect()
    }

    /// Iteration limit of the body region.
    pub fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    /// Validate the declaration: a non-empty body with at least one parallel
    /// node, every reduction preceded by a parallel node within the body,
    /// positive iteration and limited-scaling bounds, and region-unique
    /// labels.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.max_iterations == 0 {
            return Err(GraphError("max_iterations must be at least 1".into()));
        }
        let body: Vec<&PhaseNodeSpec> =
            self.nodes.iter().filter(|n| n.region == Region::Body).collect();
        if body.is_empty() {
            return Err(GraphError("the body region declares no phases".into()));
        }
        if !body.iter().any(|n| n.kind == PhaseKind::Parallel) {
            return Err(GraphError("the body region declares no parallel phase".into()));
        }
        let mut saw_parallel = false;
        for node in &body {
            match node.kind {
                PhaseKind::Parallel => saw_parallel = true,
                PhaseKind::Reduction if !saw_parallel => {
                    return Err(GraphError(format!(
                        "reduction `{}` precedes every parallel phase: there are no partials to merge",
                        node.label
                    )));
                }
                _ => {}
            }
        }
        for node in &self.nodes {
            if node.label.is_empty() {
                return Err(GraphError("phase labels must be non-empty".into()));
            }
            if let Scaling::Limited(cap) = node.scaling {
                if cap == 0 {
                    return Err(GraphError(format!(
                        "limited-scaling phase `{}` allows zero threads",
                        node.label
                    )));
                }
            }
            if node.kind == PhaseKind::Init && node.region != Region::Init {
                return Err(GraphError(format!(
                    "init-kind phase `{}` declared outside the init region",
                    node.label
                )));
            }
        }
        for region in [Region::Init, Region::Body, Region::Finalize] {
            let labels: Vec<&str> = self
                .nodes
                .iter()
                .filter(|n| n.region == region)
                .map(|n| n.label.as_str())
                .collect();
            for (i, a) in labels.iter().enumerate() {
                if labels[i + 1..].contains(a) {
                    return Err(GraphError(format!(
                        "label `{a}` declared twice in the {} region",
                        region.name()
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Fluent builder for [`PhaseGraph`]; nodes are appended to the named region.
#[derive(Debug, Clone)]
pub struct PhaseGraphBuilder {
    nodes: Vec<PhaseNodeSpec>,
    max_iterations: usize,
}

impl PhaseGraphBuilder {
    fn push(mut self, region: Region, kind: PhaseKind, label: &str, scaling: Scaling) -> Self {
        self.nodes.push(PhaseNodeSpec { region, kind, label: label.to_string(), scaling });
        self
    }

    /// Declare an init-region setup phase.
    pub fn init(self, label: &str) -> Self {
        self.push(Region::Init, PhaseKind::Init, label, Scaling::Serial)
    }

    /// Declare a fully-scaling parallel phase in the body.
    pub fn parallel(self, label: &str) -> Self {
        self.push(Region::Body, PhaseKind::Parallel, label, Scaling::Full)
    }

    /// Declare a limited-parallelism phase in the body (at most `cap`
    /// threads).
    pub fn parallel_limited(self, label: &str, cap: usize) -> Self {
        self.push(Region::Body, PhaseKind::Parallel, label, Scaling::Limited(cap))
    }

    /// Declare the merging (reduction) phase in the body.
    pub fn reduction(self, label: &str) -> Self {
        self.push(Region::Body, PhaseKind::Reduction, label, Scaling::Serial)
    }

    /// Declare a constant serial phase in the body.
    pub fn serial(self, label: &str) -> Self {
        self.push(Region::Body, PhaseKind::SerialConstant, label, Scaling::Serial)
    }

    /// Declare a fully-scaling parallel phase in the finalize region.
    pub fn finalize_parallel(self, label: &str) -> Self {
        self.push(Region::Finalize, PhaseKind::Parallel, label, Scaling::Full)
    }

    /// Declare a constant serial phase in the finalize region.
    pub fn finalize_serial(self, label: &str) -> Self {
        self.push(Region::Finalize, PhaseKind::SerialConstant, label, Scaling::Serial)
    }

    /// Validate and finish the declaration.
    ///
    /// # Errors
    /// Returns the first [`GraphError`] found by [`PhaseGraph::validate`].
    pub fn build(self) -> Result<PhaseGraph, GraphError> {
        let graph = PhaseGraph { nodes: self.nodes, max_iterations: self.max_iterations };
        graph.validate()?;
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kmeans_like() -> PhaseGraph {
        PhaseGraph::builder(50)
            .init("init-centers")
            .parallel("assign-and-accumulate")
            .reduction("merge-partials")
            .serial("recompute-centers")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_declares_regions_in_order() {
        let g = kmeans_like();
        assert_eq!(g.nodes().len(), 4);
        assert_eq!(g.region_nodes(Region::Init).len(), 1);
        assert_eq!(g.region_nodes(Region::Body).len(), 3);
        assert!(g.region_nodes(Region::Finalize).is_empty());
        assert_eq!(g.max_iterations(), 50);
    }

    #[test]
    fn body_without_parallel_phase_is_rejected() {
        let err = PhaseGraph::builder(1).serial("only-serial").build().unwrap_err();
        assert!(err.to_string().contains("parallel"));
    }

    #[test]
    fn empty_body_is_rejected() {
        assert!(PhaseGraph::builder(1).init("setup").build().is_err());
    }

    #[test]
    fn reduction_before_any_parallel_phase_is_rejected() {
        let err = PhaseGraph::builder(1).reduction("merge").parallel("work").build().unwrap_err();
        assert!(err.to_string().contains("merge"));
    }

    #[test]
    fn zero_iterations_is_rejected() {
        assert!(PhaseGraph::builder(0).parallel("work").build().is_err());
    }

    #[test]
    fn zero_thread_cap_is_rejected() {
        assert!(PhaseGraph::builder(1).parallel_limited("build", 0).build().is_err());
    }

    #[test]
    fn duplicate_labels_within_a_region_are_rejected() {
        let err = PhaseGraph::builder(1).parallel("work").parallel("work").build().unwrap_err();
        assert!(err.to_string().contains("work"));
    }

    #[test]
    fn same_label_in_different_regions_is_allowed() {
        assert!(PhaseGraph::builder(1).parallel("pass").finalize_parallel("pass").build().is_ok());
    }

    #[test]
    fn graph_serializes_roundtrip() {
        let g = kmeans_like();
        let json = serde_json::to_string(&g).unwrap();
        let back: PhaseGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
