//! The phase-graph scheduler.
//!
//! [`PhaseScheduler::run`] drives a [`PhasedWorkload`] through its declared
//! graph — init region once, body region until the workload breaks or the
//! declared iteration limit is reached, finalize region once — handing the
//! workload a fresh conformance-checked [`PhaseExec`] per region pass and
//! streaming every instrumented record into the caller's [`RecordSink`].

use mp_profile::stream::{NullSink, RecordSink};
use mp_profile::{Profiler, RunProfile};

use crate::exec::PhaseExec;
use crate::graph::{PhaseGraph, Region};

/// Loop control returned by one body iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Run another iteration (until the graph's limit).
    Continue,
    /// The workload converged; skip to the finalize region.
    Break,
}

/// A workload expressed as a phase graph: declarative structure plus the
/// phase bodies, executed and instrumented by [`PhaseScheduler`].
///
/// The four clustering workloads implement this; anything that does makes
/// itself a drop-in scenario for the characterisation sweep, the streaming
/// parameter extraction and (through calibration) the design-space engine.
pub trait PhasedWorkload {
    /// Mutable state threaded through the regions.
    type State;
    /// Final result assembled by the finalize region.
    type Output;

    /// Workload name, used for profiles and reports.
    fn name(&self) -> &str;

    /// The declared phase graph. Called once per run; must validate.
    fn graph(&self) -> PhaseGraph;

    /// Execute the init region and build the initial state.
    fn init(&self, exec: &PhaseExec<'_>) -> Self::State;

    /// Execute one pass of the body region. `iter` counts from zero.
    fn iteration(&self, state: &mut Self::State, exec: &PhaseExec<'_>, iter: usize) -> Control;

    /// Execute the finalize region and assemble the output.
    fn finalize(&self, state: Self::State, exec: &PhaseExec<'_>) -> Self::Output;
}

/// Outcome of a scheduled run: the workload output plus loop bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome<T> {
    /// The workload's output.
    pub output: T,
    /// Body iterations executed.
    pub iterations: usize,
    /// Whether the workload broke out before the iteration limit.
    pub converged: bool,
}

/// Executes phased workloads at a fixed thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseScheduler {
    threads: usize,
}

impl PhaseScheduler {
    /// A scheduler using `threads` worker threads (thread 0 is the caller).
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "threads must be positive");
        PhaseScheduler { threads }
    }

    /// The scheduler's thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `workload` to completion, streaming instrumented records into
    /// `sink`.
    ///
    /// # Panics
    /// Panics when the workload's graph fails validation or its execution
    /// deviates from the declaration (see [`PhaseExec`]).
    pub fn run<W: PhasedWorkload>(
        &self,
        workload: &W,
        sink: &dyn RecordSink,
    ) -> RunOutcome<W::Output> {
        let graph = workload.graph();
        if let Err(e) = graph.validate() {
            panic!("workload `{}` declares an {e}", workload.name());
        }

        let init_exec =
            PhaseExec::new(sink, self.threads, Region::Init, graph.region_nodes(Region::Init));
        let mut state = workload.init(&init_exec);

        let mut iterations = 0usize;
        let mut converged = false;
        for iter in 0..graph.max_iterations() {
            let exec =
                PhaseExec::new(sink, self.threads, Region::Body, graph.region_nodes(Region::Body));
            let control = workload.iteration(&mut state, &exec, iter);
            iterations += 1;
            if control == Control::Break {
                converged = true;
                break;
            }
        }

        let final_exec = PhaseExec::new(
            sink,
            self.threads,
            Region::Finalize,
            graph.region_nodes(Region::Finalize),
        );
        let output = workload.finalize(state, &final_exec);
        RunOutcome { output, iterations, converged }
    }

    /// Run with a fresh [`Profiler`] and return the output together with the
    /// collected [`RunProfile`].
    pub fn run_profiled<W: PhasedWorkload>(
        &self,
        workload: &W,
    ) -> (RunOutcome<W::Output>, RunProfile) {
        let profiler = Profiler::new(workload.name(), self.threads);
        let outcome = self.run(workload, &profiler);
        (outcome, profiler.finish())
    }

    /// Run without any instrumentation (timing overhead skipped entirely).
    pub fn run_uninstrumented<W: PhasedWorkload>(&self, workload: &W) -> RunOutcome<W::Output> {
        self.run(workload, &NullSink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_profile::{PhaseKind, StreamingExtractor};

    /// A miniature kmeans-shaped workload: sums chunks in parallel, merges,
    /// and converges after a fixed number of iterations.
    struct MiniWorkload {
        items: usize,
        converge_after: usize,
    }

    impl PhasedWorkload for MiniWorkload {
        type State = (Vec<f64>, usize);
        type Output = f64;

        fn name(&self) -> &str {
            "mini"
        }

        fn graph(&self) -> PhaseGraph {
            PhaseGraph::builder(10)
                .init("alloc")
                .parallel("sum-chunks")
                .reduction("merge")
                .serial("check")
                .finalize_serial("report")
                .build()
                .unwrap()
        }

        fn init(&self, exec: &PhaseExec<'_>) -> Self::State {
            (exec.init("alloc", || vec![0.0; 1]), 0)
        }

        fn iteration(&self, state: &mut Self::State, exec: &PhaseExec<'_>, iter: usize) -> Control {
            let partials = exec.parallel("sum-chunks", self.items, |_ctx, range| {
                vec![range.map(|i| i as f64).sum::<f64>()]
            });
            let (merged, _stats) =
                exec.reduce("merge", &partials, mp_par::ReductionStrategy::SerialLinear);
            let done = exec.serial("check", || {
                state.0 = merged;
                state.1 = iter + 1;
                iter + 1 >= self.converge_after
            });
            if done {
                Control::Break
            } else {
                Control::Continue
            }
        }

        fn finalize(&self, state: Self::State, exec: &PhaseExec<'_>) -> Self::Output {
            exec.serial("report", || state.0[0])
        }
    }

    #[test]
    fn scheduler_runs_the_declared_loop() {
        let w = MiniWorkload { items: 100, converge_after: 3 };
        let scheduler = PhaseScheduler::new(4);
        let (outcome, profile) = scheduler.run_profiled(&w);
        let expect: f64 = (0..100).map(|i| i as f64).sum();
        assert_eq!(outcome.output, expect);
        assert_eq!(outcome.iterations, 3);
        assert!(outcome.converged);
        // 1 init + 3 iterations × 3 phases + 1 finalize = 11 records.
        assert_eq!(profile.records.len(), 11);
        assert_eq!(profile.app, "mini");
        assert!(profile.parallel_time() >= 0.0);
        assert!(profile.time_in(PhaseKind::Init) >= 0.0);
    }

    #[test]
    fn iteration_limit_stops_a_non_converging_workload() {
        let w = MiniWorkload { items: 10, converge_after: usize::MAX };
        let outcome = PhaseScheduler::new(2).run_uninstrumented(&w);
        assert_eq!(outcome.iterations, 10);
        assert!(!outcome.converged);
    }

    #[test]
    fn results_are_thread_count_independent() {
        let w = MiniWorkload { items: 1000, converge_after: 2 };
        let base = PhaseScheduler::new(1).run_uninstrumented(&w).output;
        for threads in [2usize, 3, 8, 16] {
            assert_eq!(PhaseScheduler::new(threads).run_uninstrumented(&w).output, base);
        }
    }

    #[test]
    fn records_stream_into_an_extractor() {
        let w = MiniWorkload { items: 5000, converge_after: 4 };
        let extractor = StreamingExtractor::new("mini");
        for threads in [1usize, 2, 4] {
            let sink = extractor.run_sink(threads);
            PhaseScheduler::new(threads).run(&w, &sink);
        }
        assert_eq!(extractor.thread_counts(), vec![1, 2, 4]);
        let runs = extractor.measured_runs();
        assert_eq!(runs.len(), 3);
        assert!(runs.iter().all(|r| r.parallel_seconds > 0.0));
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        PhaseScheduler::new(0);
    }
}
