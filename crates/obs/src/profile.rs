//! The sweep profiler: per-batch / per-shard / per-window spans recorded
//! while enabled, exported as chrome://tracing-compatible JSON.
//!
//! Disabled (the default) it costs one relaxed atomic load per would-be
//! span; enabled, each span is a clock pair plus one short mutex push, far
//! off the per-scenario hot path (spans cover whole batches and windows).
//! Load the exported file in `about:tracing` or
//! [Perfetto](https://ui.perfetto.dev).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::monotonic_ns;

/// One completed span on the profiler timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// What the span covers (`"batch"`, `"window"`, `"table_build"`, …).
    pub name: String,
    /// Coarse grouping shown as the chrome trace category
    /// (`"engine"`, `"serve"`).
    pub category: &'static str,
    /// Timeline lane: worker index, shard index, or window ordinal.
    pub lane: u64,
    /// Start on the process monotonic clock, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub duration_ns: u64,
}

/// A guard that records a [`Span`] when dropped (no-op if the profiler was
/// disabled when it was opened).
pub struct SpanGuard<'a> {
    profiler: &'a Profiler,
    name: String,
    category: &'static str,
    lane: u64,
    start_ns: u64,
    armed: bool,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.profiler.record(Span {
                name: std::mem::take(&mut self.name),
                category: self.category,
                lane: self.lane,
                start_ns: self.start_ns,
                duration_ns: monotonic_ns().saturating_sub(self.start_ns),
            });
        }
    }
}

/// A span recorder that is dark until enabled. Most code uses the
/// process-wide [`Profiler::global`]; tests instantiate their own.
#[derive(Default)]
pub struct Profiler {
    enabled: AtomicBool,
    spans: Mutex<Vec<Span>>,
}

impl Profiler {
    /// A fresh, disabled profiler.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// The process-wide profiler the engine and service record into.
    pub fn global() -> &'static Profiler {
        static GLOBAL: OnceLock<Profiler> = OnceLock::new();
        GLOBAL.get_or_init(Profiler::new)
    }

    /// Start (or stop) recording spans.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether spans are currently recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Open a span; it records itself when the guard drops. When the
    /// profiler is disabled this is one atomic load and no allocation.
    pub fn span(&self, name: &str, category: &'static str, lane: u64) -> SpanGuard<'_> {
        let armed = self.is_enabled();
        SpanGuard {
            profiler: self,
            name: if armed { name.to_string() } else { String::new() },
            category,
            lane,
            start_ns: if armed { monotonic_ns() } else { 0 },
            armed,
        }
    }

    /// Record a completed span (dropped silently while disabled).
    pub fn record(&self, span: Span) {
        if self.is_enabled() {
            self.spans.lock().expect("profiler poisoned").push(span);
        }
    }

    /// Drain every recorded span, oldest first.
    pub fn take(&self) -> Vec<Span> {
        std::mem::take(&mut *self.spans.lock().expect("profiler poisoned"))
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("profiler poisoned").len()
    }

    /// Whether no span is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A small stable lane id for the calling thread (sequential from 0 in
/// first-use order): keeps each worker's spans on its own chrome-trace
/// timeline row.
pub fn thread_lane() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT_LANE: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static LANE: u64 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
    }
    LANE.with(|lane| *lane)
}

/// Render spans as a chrome://tracing JSON document (complete `"X"` events;
/// timestamps and durations in microseconds, lanes as thread ids).
pub fn chrome_trace_json(spans: &[Span]) -> String {
    fn escape(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => "\\\"".chars().collect::<Vec<_>>(),
                '\\' => "\\\\".chars().collect(),
                c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect()
    }
    let events: Vec<String> = spans
        .iter()
        .map(|span| {
            format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
                escape(&span.name),
                span.category,
                span.lane,
                span.start_ns as f64 / 1e3,
                span.duration_ns as f64 / 1e3,
            )
        })
        .collect();
    format!("{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}", events.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let profiler = Profiler::new();
        {
            let _span = profiler.span("batch", "engine", 0);
        }
        profiler.record(Span {
            name: "direct".into(),
            category: "engine",
            lane: 1,
            start_ns: 0,
            duration_ns: 10,
        });
        assert!(profiler.is_empty());
    }

    #[test]
    fn enabled_profiler_captures_guard_spans_with_durations() {
        let profiler = Profiler::new();
        profiler.set_enabled(true);
        {
            let _span = profiler.span("window 3", "serve", 2);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let spans = profiler.take();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "window 3");
        assert_eq!(spans[0].lane, 2);
        assert!(spans[0].duration_ns >= 1_000_000);
        assert!(profiler.is_empty(), "take drains");
    }

    #[test]
    fn chrome_export_is_wellformed_json_with_one_event_per_span() {
        let spans = vec![
            Span {
                name: "batch \"0\"".into(),
                category: "engine",
                lane: 0,
                start_ns: 1_500,
                duration_ns: 2_000,
            },
            Span {
                name: "window".into(),
                category: "serve",
                lane: 7,
                start_ns: 4_000,
                duration_ns: 500,
            },
        ];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"tid\":7"));
        assert!(json.contains("batch \\\"0\\\""));
        assert_eq!(json.matches("\"name\"").count(), 2);
    }
}
