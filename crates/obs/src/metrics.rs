//! The lock-free metrics registry: sharded [`Counter`]s, [`Gauge`]s and
//! log-bucketed histograms behind get-or-create names, with mergeable
//! [`Snapshot`]s that print as JSON or Prometheus exposition text.
//!
//! The hot path is free of locks by construction: counters are relaxed
//! `fetch_add`s on cache-line-padded thread-hashed shards, gauges are a
//! single relaxed atomic, histograms shard the same way (see
//! [`Histogram`]). Only registration (first lookup of a name — callers
//! cache the returned `Arc`) and snapshotting take the registry mutex.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramSnapshot, LATENCY_BOUNDS_MS};

/// Increment shards per counter; enough that the handful of threads a
/// 1-CPU-to-few-CPU host runs rarely collide on a cache line.
const COUNTER_SHARDS: usize = 8;

/// The calling thread's shard slot in `0..shards`. Slots are handed out
/// round-robin at first use per thread, so up to `shards` concurrent
/// threads get distinct cache lines.
pub(crate) fn thread_shard(shards: usize) -> usize {
    static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT_SLOT.fetch_add(1, Ordering::Relaxed);
    }
    SLOT.with(|slot| *slot % shards)
}

/// A padded atomic cell: one per shard, one per cache line.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// A monotonically increasing counter, sharded across cache lines.
pub struct Counter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter { shards: std::array::from_fn(|_| PaddedU64(AtomicU64::new(0))) }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[thread_shard(COUNTER_SHARDS)].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total across all shards.
    pub fn value(&self) -> u64 {
        self.shards.iter().map(|shard| shard.0.load(Ordering::Relaxed)).sum()
    }
}

impl Default for Counter {
    fn default() -> Counter {
        Counter::new()
    }
}

/// What backs a gauge: a stored atomic, or a callback sampled at snapshot
/// time (for values another subsystem already maintains, like the
/// allocator's live-byte count).
enum GaugeKind {
    Stored(AtomicI64),
    Sampled(Box<dyn Fn() -> i64 + Send + Sync>),
}

/// An instantaneous value: set/add/sub on a single relaxed atomic, or
/// sampled from a callback at snapshot time.
pub struct Gauge {
    kind: GaugeKind,
}

impl Gauge {
    /// A stored gauge at zero.
    pub fn new() -> Gauge {
        Gauge { kind: GaugeKind::Stored(AtomicI64::new(0)) }
    }

    /// A gauge whose value is sampled from `f` at read time.
    pub fn sampled(f: impl Fn() -> i64 + Send + Sync + 'static) -> Gauge {
        Gauge { kind: GaugeKind::Sampled(Box::new(f)) }
    }

    /// Set the value (no-op for sampled gauges).
    pub fn set(&self, value: i64) {
        if let GaugeKind::Stored(cell) = &self.kind {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Add `delta` (no-op for sampled gauges).
    #[inline]
    pub fn add(&self, delta: i64) {
        if let GaugeKind::Stored(cell) = &self.kind {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Subtract `delta` (no-op for sampled gauges).
    #[inline]
    pub fn sub(&self, delta: i64) {
        self.add(-delta);
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        match &self.kind {
            GaugeKind::Stored(cell) => cell.load(Ordering::Relaxed),
            GaugeKind::Sampled(f) => f(),
        }
    }
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge::new()
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Vec<(String, Arc<Counter>)>,
    gauges: Vec<(String, Arc<Gauge>)>,
    histograms: Vec<(String, Arc<Histogram>)>,
}

impl RegistryInner {
    fn find<T>(list: &[(String, Arc<T>)], name: &str) -> Option<Arc<T>> {
        list.iter().find(|(n, _)| n == name).map(|(_, v)| Arc::clone(v))
    }
}

/// A named collection of metrics. Most code uses the process-wide
/// [`registry()`](crate::registry); tests instantiate their own.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter `name`. Cache the handle — lookup takes
    /// the registry mutex.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        if let Some(found) = RegistryInner::find(&inner.counters, name) {
            return found;
        }
        let counter = Arc::new(Counter::new());
        inner.counters.push((name.to_string(), Arc::clone(&counter)));
        counter
    }

    /// Get or create the stored gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        if let Some(found) = RegistryInner::find(&inner.gauges, name) {
            return found;
        }
        let gauge = Arc::new(Gauge::new());
        inner.gauges.push((name.to_string(), Arc::clone(&gauge)));
        gauge
    }

    /// Register (or replace) the sampled gauge `name`, reading its value
    /// from `f` at snapshot time.
    pub fn gauge_sampled(&self, name: &str, f: impl Fn() -> i64 + Send + Sync + 'static) {
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        let gauge = Arc::new(Gauge::sampled(f));
        if let Some(slot) = inner.gauges.iter_mut().find(|(n, _)| n == name) {
            slot.1 = gauge;
        } else {
            inner.gauges.push((name.to_string(), gauge));
        }
    }

    /// Get or create the histogram `name` over `bounds`.
    ///
    /// # Panics
    /// If `name` already exists with different bounds.
    pub fn histogram(&self, name: &str, bounds: &'static [f64]) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        if let Some(found) = RegistryInner::find(&inner.histograms, name) {
            assert_eq!(found.bounds(), bounds, "histogram `{name}` re-registered with new bounds");
            return found;
        }
        let histogram = Arc::new(Histogram::new(bounds));
        inner.histograms.push((name.to_string(), Arc::clone(&histogram)));
        histogram
    }

    /// Get or create the latency histogram `name` ([`LATENCY_BOUNDS_MS`]
    /// buckets).
    pub fn histogram_ms(&self, name: &str) -> Arc<Histogram> {
        self.histogram(name, &LATENCY_BOUNDS_MS)
    }

    /// A point-in-time view of every registered metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("obs registry poisoned");
        let mut counters: Vec<(String, u64)> =
            inner.counters.iter().map(|(n, c)| (n.clone(), c.value())).collect();
        let mut gauges: Vec<(String, i64)> =
            inner.gauges.iter().map(|(n, g)| (n.clone(), g.value())).collect();
        let mut histograms: Vec<(String, HistogramSnapshot)> =
            inner.histograms.iter().map(|(n, h)| (n.clone(), h.snapshot())).collect();
        drop(inner);
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot { counters, gauges, histograms }
    }
}

/// A point-in-time view of a [`Registry`], detached from the live metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, total)` per counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` per histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Snapshot {
    /// The counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// The snapshot as a JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{name:{"count":..,"sum":..,"buckets":[..]}}}`.
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(name, value)| format!("\"{}\":{value}", escape_json(name)))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(name, value)| format!("\"{}\":{value}", escape_json(name)))
            .collect();
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|(name, hist)| {
                format!(
                    "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":{}}}",
                    escape_json(name),
                    hist.count(),
                    hist.sum,
                    hist.json_buckets(),
                )
            })
            .collect();
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            histograms.join(","),
        )
    }

    /// The snapshot as Prometheus exposition text: counters as `counter`,
    /// gauges as `gauge`, histograms as cumulative `_bucket`/`_sum`/`_count`
    /// series. Metric names are sanitised to `[a-zA-Z0-9_:]`.
    pub fn to_prometheus(&self) -> String {
        fn sanitise(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() || c == ':' { c } else { '_' })
                .collect()
        }
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = sanitise(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let name = sanitise(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, hist) in &self.histograms {
            let name = sanitise(name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (bucket, &count) in hist.counts.iter().enumerate() {
                cumulative += count;
                let le = hist
                    .bounds
                    .get(bucket)
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "+Inf".to_string());
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_sum {}\n", hist.sum));
            out.push_str(&format!("{name}_count {cumulative}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_across_threads() {
        let registry = Registry::new();
        let counter = registry.counter("hits");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(counter.value(), 80_000);
        assert_eq!(registry.snapshot().counter("hits"), Some(80_000));
    }

    #[test]
    fn gauges_store_and_sample() {
        let registry = Registry::new();
        let stored = registry.gauge("depth");
        stored.add(5);
        stored.sub(2);
        registry.gauge_sampled("sampled", || 42);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("depth"), Some(3));
        assert_eq!(snap.gauge("sampled"), Some(42));
        // Re-registering a sampled gauge replaces the callback.
        registry.gauge_sampled("sampled", || 7);
        assert_eq!(registry.snapshot().gauge("sampled"), Some(7));
    }

    #[test]
    fn get_or_create_returns_the_same_instance() {
        let registry = Registry::new();
        registry.counter("a").add(3);
        registry.counter("a").add(4);
        assert_eq!(registry.snapshot().counter("a"), Some(7));
        registry.histogram_ms("h").record(1.0);
        registry.histogram_ms("h").record(2.0);
        assert_eq!(registry.snapshot().histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn snapshot_prints_json_and_prometheus() {
        let registry = Registry::new();
        registry.counter("requests_total").add(3);
        registry.gauge("queue_depth").set(2);
        registry.histogram_ms("request_ms").record(0.3);
        let snap = registry.snapshot();

        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"requests_total\":3"));
        assert!(json.contains("\"queue_depth\":2"));
        assert!(json.contains("\"request_ms\":{\"count\":1"));

        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total 3"));
        assert!(text.contains("queue_depth 2"));
        assert!(text.contains("request_ms_bucket{le=\"0.25\"} 0"));
        assert!(text.contains("request_ms_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("request_ms_count 1"));
    }

    #[test]
    fn snapshot_is_sorted_and_json_escapes_names() {
        let registry = Registry::new();
        registry.counter("zeta").inc();
        registry.counter("alpha").inc();
        registry.counter("weird\"name").inc();
        let snap = registry.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert!(snap.to_json().contains("weird\\\"name"));
    }
}
