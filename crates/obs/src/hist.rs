//! Lock-free log-bucketed histograms with mergeable snapshots.
//!
//! One implementation serves every latency distribution in the workspace:
//! the serve per-verb request histograms, the engine batch timings and
//! `repro load`'s latency report all share [`LATENCY_BOUNDS_MS`], so their
//! buckets are directly comparable (and bit-identical to the bounds the
//! load harness has always printed).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::metrics::thread_shard;

/// Upper bucket bounds of the shared latency histogram, in milliseconds.
/// The final (implicit) bucket is `+inf`.
pub const LATENCY_BOUNDS_MS: [f64; 14] =
    [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 2048.0, 8192.0];

/// Recording shards per histogram; updates hash the calling thread to a
/// shard so concurrent writers touch distinct cache lines.
const SHARDS: usize = 8;

/// Nearest-rank percentile of an ascending-sorted sample, `fraction` in
/// `0.0..=1.0`. Empty input yields `0.0`.
pub fn percentile_of_sorted(sorted: &[f64], fraction: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * fraction).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// One shard of bucket counts; padded so shards never share a cache line.
#[repr(align(64))]
struct HistShard {
    /// `bounds.len() + 1` buckets; the last is `+inf`.
    counts: Vec<AtomicU64>,
    /// Sum of recorded values, stored as `f64` bits (CAS-accumulated).
    sum_bits: AtomicU64,
}

/// A lock-free histogram over fixed upper bucket bounds.
///
/// [`Histogram::record`] is a relaxed `fetch_add` on a thread-sharded
/// bucket plus a CAS accumulation of the sum — no locks anywhere on the
/// hot path. Read sides take a [`HistogramSnapshot`].
pub struct Histogram {
    bounds: &'static [f64],
    shards: Vec<HistShard>,
}

impl Histogram {
    /// A histogram over `bounds` (ascending upper bucket bounds; a final
    /// `+inf` bucket is implied).
    pub fn new(bounds: &'static [f64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        let shards = (0..SHARDS)
            .map(|_| HistShard {
                counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            })
            .collect();
        Histogram { bounds, shards }
    }

    /// A histogram over the shared latency buckets ([`LATENCY_BOUNDS_MS`]).
    pub fn latency_ms() -> Histogram {
        Histogram::new(&LATENCY_BOUNDS_MS)
    }

    /// The upper bucket bounds (the final `+inf` bucket is implicit).
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Record one observation.
    pub fn record(&self, value: f64) {
        let bucket =
            self.bounds.iter().position(|&bound| value <= bound).unwrap_or(self.bounds.len());
        let shard = &self.shards[thread_shard(SHARDS)];
        shard.counts[bucket].fetch_add(1, Ordering::Relaxed);
        let mut current = shard.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match shard.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// A consistent-enough snapshot: each bucket is read atomically;
    /// concurrent recorders may land on either side of the cut.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; self.bounds.len() + 1];
        let mut sum = 0.0;
        for shard in &self.shards {
            for (total, count) in counts.iter_mut().zip(&shard.counts) {
                *total += count.load(Ordering::Relaxed);
            }
            sum += f64::from_bits(shard.sum_bits.load(Ordering::Relaxed));
        }
        HistogramSnapshot { bounds: self.bounds.to_vec(), counts, sum }
    }
}

/// An owned point-in-time view of a [`Histogram`]: bucket counts, total
/// count and sum. Snapshots over the same bounds [`merge`], and percentiles
/// are estimated from the bucket distribution.
///
/// [`merge`]: HistogramSnapshot::merge
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds; the final entry of `counts` is the `+inf`
    /// bucket.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// An empty snapshot over `bounds`.
    pub fn empty(bounds: &[f64]) -> HistogramSnapshot {
        HistogramSnapshot { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], sum: 0.0 }
    }

    /// Build a snapshot by recording every value of `values`.
    pub fn from_values(bounds: &[f64], values: &[f64]) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::empty(bounds);
        for &value in values {
            let bucket = bounds.iter().position(|&bound| value <= bound).unwrap_or(bounds.len());
            snap.counts[bucket] += 1;
            snap.sum += value;
        }
        snap
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean of the recorded values (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum / count as f64
        }
    }

    /// Fold `other` into `self`. Both snapshots must share bucket bounds;
    /// merging is associative and commutative over counts and sums.
    ///
    /// # Panics
    /// If the bucket bounds differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(self.bounds, other.bounds, "histogram merge requires identical bounds");
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum += other.sum;
    }

    /// Percentile estimate from the bucket distribution: the upper bound of
    /// the bucket containing the `fraction` rank (the last finite bound for
    /// the `+inf` bucket). `0.0` when empty.
    pub fn percentile(&self, fraction: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((total as f64 - 1.0) * fraction.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if count > 0 && rank < seen {
                return match self.bounds.get(bucket) {
                    Some(&bound) => bound,
                    None => *self.bounds.last().expect("at least one bound"),
                };
            }
        }
        *self.bounds.last().expect("at least one bound")
    }

    /// The buckets as a JSON array of `{"le_ms":bound,"count":n}` objects
    /// (the `+inf` bucket prints `"le_ms":"inf"`), matching the layout the
    /// load harness has always reported.
    pub fn json_buckets(&self) -> String {
        let buckets: Vec<String> = self
            .counts
            .iter()
            .enumerate()
            .map(|(bucket, count)| {
                let bound = self
                    .bounds
                    .get(bucket)
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "\"inf\"".to_string());
                format!("{{\"le_ms\":{bound},\"count\":{count}}}")
            })
            .collect();
        format!("[{}]", buckets.join(","))
    }

    /// A one-line human rendering of the non-empty buckets.
    pub fn render(&self) -> String {
        let mut parts = Vec::new();
        for (bucket, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            match self.bounds.get(bucket) {
                Some(bound) => parts.push(format!("<={bound}ms: {count}")),
                None => parts.push(format!(">{}ms: {count}", self.bounds.last().unwrap())),
            }
        }
        parts.join("  ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_every_value_and_the_tail_lands_in_inf() {
        let hist = Histogram::latency_ms();
        for value in [0.1, 1.0, 50.0, 1000.0, 100_000.0] {
            hist.record(value);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 5);
        assert_eq!(*snap.counts.last().unwrap(), 1, "100s lands in +inf");
        assert!((snap.sum - 101_051.1).abs() < 1e-6);
        assert!(snap.json_buckets().contains("\"le_ms\":0.25"));
        assert!(!snap.render().is_empty());
    }

    #[test]
    fn bucket_rule_matches_the_historical_load_histogram() {
        // `value <= bound` picks the first bound that covers the value —
        // exactly the rule the hand-rolled load histogram used.
        let snap = HistogramSnapshot::from_values(&LATENCY_BOUNDS_MS, &[0.25, 0.2500001, 0.5]);
        assert_eq!(snap.counts[0], 1);
        assert_eq!(snap.counts[1], 2);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let hist = std::sync::Arc::new(Histogram::latency_ms());
        std::thread::scope(|scope| {
            for thread in 0..8 {
                let hist = std::sync::Arc::clone(&hist);
                scope.spawn(move || {
                    for i in 0..1000 {
                        hist.record((thread * 1000 + i) as f64 * 0.01);
                    }
                });
            }
        });
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 8000);
        let expect: f64 = (0..8000).map(|i| i as f64 * 0.01).sum();
        assert!((snap.sum - expect).abs() < 1e-6, "sum {} != {expect}", snap.sum);
    }

    #[test]
    fn merge_is_associative_and_percentiles_are_monotone() {
        let a = HistogramSnapshot::from_values(&LATENCY_BOUNDS_MS, &[0.1, 0.3, 5.0]);
        let b = HistogramSnapshot::from_values(&LATENCY_BOUNDS_MS, &[100.0, 9000.0]);
        let c = HistogramSnapshot::from_values(&LATENCY_BOUNDS_MS, &[1.5]);
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c.count(), 6);
        assert!(ab_c.percentile(0.5) <= ab_c.percentile(0.95));
        assert!(ab_c.percentile(0.0) <= ab_c.percentile(1.0));
        assert_eq!(HistogramSnapshot::empty(&LATENCY_BOUNDS_MS).percentile(0.5), 0.0);
    }

    #[test]
    fn percentile_of_sorted_matches_the_historical_rule() {
        let sorted: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(percentile_of_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_of_sorted(&sorted, 1.0), 99.0);
        assert!(percentile_of_sorted(&sorted, 0.5) <= percentile_of_sorted(&sorted, 0.95));
        assert_eq!(percentile_of_sorted(&[], 0.5), 0.0);
    }
}
