//! # mp-obs — always-on observability for the merging-phases stack
//!
//! A zero-dependency, low-overhead observability layer shared by the dse
//! engine, the serve reactor and the bench harness:
//!
//! * [`metrics`] — a lock-free [`Registry`](metrics::Registry) of sharded
//!   [`Counter`](metrics::Counter)s, [`Gauge`](metrics::Gauge)s (stored or
//!   callback-backed) and log-bucketed [`Histogram`](hist::Histogram)s.
//!   Updates are plain relaxed atomics on cache-line-padded shards, so the
//!   always-on cost stays under the measurement noise floor; registration
//!   and snapshotting take a mutex on the cold path only. Snapshots merge,
//!   print as JSON and as Prometheus exposition text.
//! * [`trace`] — per-request traces: an id minted when the request line is
//!   decoded, stamped at each pipeline stage
//!   (`decode → queue → plan → evaluate → encode → flush`) and committed to
//!   a bounded [`TraceLog`](trace::TraceLog).
//! * [`profile`] — a sweep [`Profiler`](profile::Profiler) recording
//!   per-batch / per-shard / per-window spans, exported as
//!   chrome://tracing-compatible JSON (load the file in `about:tracing` or
//!   [Perfetto](https://ui.perfetto.dev)).
//!
//! The crate is dependency-free by design: every consumer in the workspace
//! (engine hot loops, the epoll reactor, the global allocator hooks) must be
//! able to count without pulling in serialisation or locking machinery.
//!
//! ## Quick example
//!
//! ```
//! use mp_obs::prelude::*;
//!
//! let registry = Registry::new();
//! let evals = registry.counter("scenarios_evaluated");
//! let lat = registry.histogram_ms("request_ms");
//! evals.add(128);
//! lat.record(0.7);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("scenarios_evaluated"), Some(128));
//! assert!(snap.to_prometheus().contains("scenarios_evaluated 128"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hist;
pub mod metrics;
pub mod profile;
pub mod trace;

use std::sync::OnceLock;
use std::time::Instant;

/// Commonly used items.
pub mod prelude {
    pub use crate::hist::{percentile_of_sorted, Histogram, HistogramSnapshot, LATENCY_BOUNDS_MS};
    pub use crate::metrics::{Counter, Gauge, Registry, Snapshot};
    pub use crate::profile::{Profiler, Span};
    pub use crate::trace::{RequestTrace, Stage, TraceLog};
    pub use crate::{counter, gauge, histogram_ms, monotonic_ns, registry};
}

/// Nanoseconds on the process-wide monotonic clock (anchored at first use).
///
/// Every trace and span timestamp in the workspace comes from this one
/// clock, so stamps taken on different threads are directly comparable.
pub fn monotonic_ns() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// The process-wide metrics registry every subsystem registers into.
pub fn registry() -> &'static metrics::Registry {
    static GLOBAL: OnceLock<metrics::Registry> = OnceLock::new();
    GLOBAL.get_or_init(metrics::Registry::new)
}

/// Get or create `name` in the global registry (see [`registry`]).
pub fn counter(name: &str) -> std::sync::Arc<metrics::Counter> {
    registry().counter(name)
}

/// Get or create `name` in the global registry (see [`registry`]).
pub fn gauge(name: &str) -> std::sync::Arc<metrics::Gauge> {
    registry().gauge(name)
}

/// Get or create a latency histogram (`LATENCY_BOUNDS_MS` buckets) in the
/// global registry (see [`registry`]).
pub fn histogram_ms(name: &str) -> std::sync::Arc<hist::Histogram> {
    registry().histogram_ms(name)
}

/// Log a warning: one `[mp-obs] warn(<component>): <message>` line on
/// stderr plus an increment of the process-wide `warnings_total` counter
/// and of `warnings_total_<component>`, so operational degradations (a
/// corrupt cache spill skipped, a checkpoint manifest refused) are both
/// human-visible and scrape-visible. Warnings mean the process degraded
/// gracefully — code that would *fail* should return an error instead.
pub fn warn(component: &str, message: &str) {
    counter("warnings_total").inc();
    counter(&format!("warnings_total_{component}")).inc();
    eprintln!("[mp-obs] warn({component}): {message}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
    }

    #[test]
    fn global_registry_returns_the_same_counter_for_the_same_name() {
        let a = counter("lib_test_counter");
        let b = counter("lib_test_counter");
        a.inc();
        b.inc();
        assert_eq!(a.value(), b.value());
        assert!(a.value() >= 2);
    }
}
