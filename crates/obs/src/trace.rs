//! Per-request tracing: a trace id minted when the request line is decoded,
//! a timestamp per pipeline stage, and a bounded [`TraceLog`] of completed
//! requests.
//!
//! The serve stack stamps each request at six points as it crosses
//! threads — [`Stage::Decode`] on the event loop when the line parser
//! completes a request line, [`Stage::Queue`] when an executor picks the
//! job up (ending its queue wait), [`Stage::Plan`] when the query planner
//! has resolved, costed and admitted the query (stamped for planned verbs
//! only; `0` otherwise), [`Stage::Evaluate`] when the service
//! call returns, [`Stage::Encode`] when the response bytes exist, and
//! [`Stage::Flush`] when the event loop hands them to the socket. All
//! stamps come from the one process-wide monotonic clock
//! ([`monotonic_ns`](crate::monotonic_ns)), so a completed trace's stages
//! are non-decreasing by construction.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One pipeline stage of a request's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The request line was decoded from the byte stream (trace id minted).
    Decode,
    /// An executor dequeued the job (queue wait over).
    Queue,
    /// The query planner resolved, costed and admitted the query (stamped
    /// for planned verbs — sweeps — only; `0` for unplanned requests).
    Plan,
    /// The service evaluated the request.
    Evaluate,
    /// The response was encoded to bytes.
    Encode,
    /// The response bytes were handed to the socket.
    Flush,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 6] =
        [Stage::Decode, Stage::Queue, Stage::Plan, Stage::Evaluate, Stage::Encode, Stage::Flush];

    /// The stage's index in pipeline order.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The stage's lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::Queue => "queue",
            Stage::Plan => "plan",
            Stage::Evaluate => "evaluate",
            Stage::Encode => "encode",
            Stage::Flush => "flush",
        }
    }
}

/// One request's trace: its id, verb, and a monotonic-clock stamp per
/// stage (nanoseconds; `0` marks a stage never reached).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// Server-side trace id, unique per process (minted at decode).
    pub id: u64,
    /// The request verb (`"ping"`, `"sweep"`, …), `"invalid"` for lines
    /// that failed to parse.
    pub verb: &'static str,
    /// Nanosecond stamp per stage, indexed by [`Stage::index`].
    pub stage_ns: [u64; 6],
}

impl RequestTrace {
    /// A fresh trace for `id`, stamped at [`Stage::Decode`] with `now_ns`.
    pub fn begin(id: u64, now_ns: u64) -> RequestTrace {
        let mut trace = RequestTrace { id, verb: "unknown", stage_ns: [0; 6] };
        trace.stage_ns[Stage::Decode.index()] = now_ns;
        trace
    }

    /// Record `stage` at `now_ns`.
    pub fn stamp(&mut self, stage: Stage, now_ns: u64) {
        self.stage_ns[stage.index()] = now_ns;
    }

    /// Decode-to-flush latency in milliseconds (`None` until flushed).
    pub fn total_ms(&self) -> Option<f64> {
        let decode = self.stage_ns[Stage::Decode.index()];
        let flush = self.stage_ns[Stage::Flush.index()];
        if flush == 0 {
            None
        } else {
            Some((flush.saturating_sub(decode)) as f64 / 1e6)
        }
    }
}

/// A bounded ring of completed [`RequestTrace`]s plus the process-wide
/// trace-id mint. Push and snapshot take a mutex — both happen once per
/// request (completion) or per inspection, never per byte.
pub struct TraceLog {
    capacity: usize,
    entries: Mutex<VecDeque<RequestTrace>>,
}

/// Mint a fresh process-unique trace id (starting at 1; 0 is never used).
pub fn mint_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl TraceLog {
    /// A log keeping the most recent `capacity` completed traces.
    pub fn new(capacity: usize) -> TraceLog {
        TraceLog { capacity: capacity.max(1), entries: Mutex::new(VecDeque::new()) }
    }

    /// Commit a completed trace, evicting the oldest past capacity.
    pub fn push(&self, trace: RequestTrace) {
        let mut entries = self.entries.lock().expect("trace log poisoned");
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(trace);
    }

    /// Completed traces, oldest first.
    pub fn snapshot(&self) -> Vec<RequestTrace> {
        self.entries.lock().expect("trace log poisoned").iter().cloned().collect()
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("trace log poisoned").len()
    }

    /// Whether no trace has completed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_stamp_in_order_and_total_is_decode_to_flush() {
        let mut trace = RequestTrace::begin(mint_id(), 1_000_000);
        assert_eq!(trace.total_ms(), None);
        for (offset, stage) in Stage::ALL.iter().skip(1).enumerate() {
            trace.stamp(*stage, 1_000_000 + (offset as u64 + 1) * 500_000);
        }
        assert!(trace.stage_ns.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(trace.total_ms(), Some(2.5));
    }

    #[test]
    fn minted_ids_are_unique_across_threads() {
        let mut handles = Vec::new();
        for _ in 0..4 {
            handles.push(std::thread::spawn(|| (0..1000).map(|_| mint_id()).collect::<Vec<_>>()));
        }
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before);
        assert!(!all.contains(&0));
    }

    #[test]
    fn log_keeps_the_most_recent_capacity_traces() {
        let log = TraceLog::new(3);
        assert!(log.is_empty());
        for id in 1..=5 {
            log.push(RequestTrace::begin(id, id * 10));
        }
        let kept: Vec<u64> = log.snapshot().iter().map(|t| t.id).collect();
        assert_eq!(kept, vec![3, 4, 5]);
        assert_eq!(log.len(), 3);
    }
}
