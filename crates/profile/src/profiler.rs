//! A thread-safe phase profiler.
//!
//! The [`Profiler`] accumulates [`PhaseRecord`]s for one run. Phases are
//! usually recorded by wrapping the phase body in [`Profiler::time`]; the
//! timing simulator instead reports pre-computed durations through
//! [`Profiler::record_seconds`]. A profiler is cheap to clone-out into a
//! [`RunProfile`] at the end of the run.

use std::time::Instant;

use parking_lot::Mutex;

use crate::phase::{PhaseKind, PhaseRecord, RunProfile};

/// Accumulates timed phases for a single run of a workload.
#[derive(Debug)]
pub struct Profiler {
    app: String,
    threads: usize,
    records: Mutex<Vec<PhaseRecord>>,
    enabled: bool,
}

impl Profiler {
    /// Create a profiler for a run of `app` at `threads` threads.
    pub fn new(app: impl Into<String>, threads: usize) -> Self {
        Profiler { app: app.into(), threads, records: Mutex::new(Vec::new()), enabled: true }
    }

    /// Create a disabled profiler: phase bodies still run, but nothing is
    /// recorded and the timing overhead is skipped. Useful for benchmarking
    /// the workloads without instrumentation noise.
    pub fn disabled() -> Self {
        Profiler { app: String::new(), threads: 0, records: Mutex::new(Vec::new()), enabled: false }
    }

    /// Whether this profiler records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The thread count this profiler was created for.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Time a closure as one phase and record it.
    pub fn time<T>(&self, kind: PhaseKind, label: &str, body: impl FnOnce() -> T) -> T {
        if !self.enabled {
            return body();
        }
        let start = Instant::now();
        let out = body();
        let seconds = start.elapsed().as_secs_f64();
        self.record_seconds(kind, label, seconds);
        out
    }

    /// Record a phase whose duration was measured (or simulated) externally.
    pub fn record_seconds(&self, kind: PhaseKind, label: &str, seconds: f64) {
        if !self.enabled {
            return;
        }
        self.records.lock().push(PhaseRecord::new(kind, label.to_owned(), seconds, self.threads));
    }

    /// Record a fully-formed phase record (e.g. one carrying per-thread
    /// samples from the phase-graph scheduler).
    pub fn record_phase(&self, record: PhaseRecord) {
        if !self.enabled {
            return;
        }
        self.records.lock().push(record);
    }

    /// Number of records accumulated so far.
    pub fn record_count(&self) -> usize {
        self.records.lock().len()
    }

    /// Produce the final [`RunProfile`], consuming the profiler.
    pub fn finish(self) -> RunProfile {
        RunProfile { app: self.app, threads: self.threads, records: self.records.into_inner() }
    }

    /// Produce a snapshot [`RunProfile`] without consuming the profiler.
    pub fn snapshot(&self) -> RunProfile {
        RunProfile {
            app: self.app.clone(),
            threads: self.threads,
            records: self.records.lock().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_records_a_phase_and_returns_the_value() {
        let p = Profiler::new("test", 2);
        let v = p.time(PhaseKind::Parallel, "work", || 40 + 2);
        assert_eq!(v, 42);
        let profile = p.finish();
        assert_eq!(profile.records.len(), 1);
        assert_eq!(profile.records[0].kind, PhaseKind::Parallel);
        assert_eq!(profile.records[0].threads, 2);
        assert!(profile.records[0].seconds >= 0.0);
    }

    #[test]
    fn record_seconds_stores_exact_duration() {
        let p = Profiler::new("test", 8);
        p.record_seconds(PhaseKind::Reduction, "merge", 1.25);
        p.record_seconds(PhaseKind::Reduction, "merge", 0.75);
        let profile = p.finish();
        assert_eq!(profile.reduction_time(), 2.0);
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::disabled();
        assert!(!p.is_enabled());
        let v = p.time(PhaseKind::Parallel, "work", || 7);
        assert_eq!(v, 7);
        p.record_seconds(PhaseKind::Reduction, "merge", 3.0);
        assert_eq!(p.record_count(), 0);
    }

    #[test]
    fn snapshot_does_not_consume() {
        let p = Profiler::new("snap", 4);
        p.record_seconds(PhaseKind::SerialConstant, "check", 0.5);
        let s1 = p.snapshot();
        p.record_seconds(PhaseKind::SerialConstant, "check", 0.5);
        let s2 = p.snapshot();
        assert_eq!(s1.records.len(), 1);
        assert_eq!(s2.records.len(), 2);
    }

    #[test]
    fn profiler_is_usable_from_multiple_threads() {
        let p = Profiler::new("mt", 4);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..10 {
                        p.record_seconds(PhaseKind::Parallel, "chunk", 0.01);
                    }
                });
            }
        });
        assert_eq!(p.record_count(), 40);
    }
}
