//! Phase taxonomy and per-run profiles.
//!
//! A [`RunProfile`] is a flat list of timed [`PhaseRecord`]s produced by one
//! execution of a workload at a fixed thread count. Durations are stored as
//! `f64` seconds so that the same structures can carry wall-clock times (real
//! executions) and simulated times (cycles divided by a nominal frequency).

use std::borrow::Cow;

use serde::{Deserialize, Serialize};

/// Classification of an execution phase, mirroring the paper's section split
/// (Figure 1 / Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseKind {
    /// One-time setup (data loading, memory allocation). The paper excludes
    /// initialisation when computing the serial fraction, and so do we.
    Init,
    /// The parallel section executed by all threads.
    Parallel,
    /// Serial work that does not depend on the thread count (e.g. convergence
    /// checks, final bookkeeping) — contributes to `fcon`.
    SerialConstant,
    /// The merging phase: combining per-thread partial results — contributes
    /// to `fred` and its growth to `fored`.
    Reduction,
    /// Communication performed on behalf of the merging phase (explicit
    /// exchanges of partial results). Only the simulator and the privatised
    /// reduction distinguish this from [`PhaseKind::Reduction`].
    Communication,
}

impl PhaseKind {
    /// Whether the phase counts toward the *serial section* in the paper's
    /// accounting (everything that is not the parallel section or
    /// initialisation).
    pub fn is_serial(&self) -> bool {
        matches!(self, PhaseKind::SerialConstant | PhaseKind::Reduction | PhaseKind::Communication)
    }

    /// Short label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PhaseKind::Init => "init",
            PhaseKind::Parallel => "parallel",
            PhaseKind::SerialConstant => "serial",
            PhaseKind::Reduction => "reduction",
            PhaseKind::Communication => "communication",
        }
    }
}

/// One timed phase instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// What kind of phase this was.
    pub kind: PhaseKind,
    /// Free-form label (e.g. `"assign-points"`, `"merge-centers"`). A `Cow`
    /// so static phase names (the simulator's, the schedulers') reach reports
    /// without a heap copy per record.
    pub label: Cow<'static, str>,
    /// Duration in seconds (wall-clock or simulated).
    pub seconds: f64,
    /// Number of threads active during the phase.
    pub threads: usize,
    /// Per-thread durations in seconds, indexed by thread id, when the phase
    /// was executed through the phase-graph scheduler (empty otherwise). For a
    /// fork-join phase `seconds` is the wall-clock of the whole region while
    /// these samples expose the per-worker imbalance.
    pub thread_seconds: Vec<f64>,
}

impl PhaseRecord {
    /// A record with no per-thread samples.
    pub fn new(
        kind: PhaseKind,
        label: impl Into<Cow<'static, str>>,
        seconds: f64,
        threads: usize,
    ) -> Self {
        PhaseRecord { kind, label: label.into(), seconds, threads, thread_seconds: Vec::new() }
    }

    /// Attach per-thread duration samples (builder style).
    pub fn with_thread_seconds(mut self, thread_seconds: Vec<f64>) -> Self {
        self.thread_seconds = thread_seconds;
        self
    }

    /// Load imbalance of the phase: the slowest thread's time over the mean
    /// thread time (1.0 = perfectly balanced). Returns `None` without
    /// per-thread samples.
    pub fn imbalance(&self) -> Option<f64> {
        if self.thread_seconds.is_empty() {
            return None;
        }
        let max = self.thread_seconds.iter().cloned().fold(0.0f64, f64::max);
        let mean = self.thread_seconds.iter().sum::<f64>() / self.thread_seconds.len() as f64;
        (mean > 0.0).then(|| max / mean)
    }
}

/// All timed phases of one run of a workload at a fixed thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunProfile {
    /// Name of the workload (e.g. `"kmeans"`).
    pub app: String,
    /// Thread count the run used.
    pub threads: usize,
    /// The timed phases, in execution order.
    pub records: Vec<PhaseRecord>,
}

impl RunProfile {
    /// Create an empty profile.
    pub fn new(app: impl Into<String>, threads: usize) -> Self {
        RunProfile { app: app.into(), threads, records: Vec::new() }
    }

    /// Append a record.
    pub fn push(&mut self, record: PhaseRecord) {
        self.records.push(record);
    }

    /// Total time across all phases, *excluding* initialisation (the paper's
    /// accounting subtracts initialisation before computing fractions).
    pub fn total_time(&self) -> f64 {
        self.records.iter().filter(|r| r.kind != PhaseKind::Init).map(|r| r.seconds).sum()
    }

    /// Total time including initialisation.
    pub fn total_time_with_init(&self) -> f64 {
        self.records.iter().map(|r| r.seconds).sum()
    }

    /// Total time spent in phases of the given kind.
    pub fn time_in(&self, kind: PhaseKind) -> f64 {
        self.records.iter().filter(|r| r.kind == kind).map(|r| r.seconds).sum()
    }

    /// Time spent in the serial section (constant serial + reduction +
    /// communication), the quantity whose growth Figure 2(b)/(c) plots.
    pub fn serial_time(&self) -> f64 {
        self.records.iter().filter(|r| r.kind.is_serial()).map(|r| r.seconds).sum()
    }

    /// Time spent in the parallel section.
    pub fn parallel_time(&self) -> f64 {
        self.time_in(PhaseKind::Parallel)
    }

    /// Time spent in the merging phase (reduction + its communication).
    pub fn reduction_time(&self) -> f64 {
        self.time_in(PhaseKind::Reduction) + self.time_in(PhaseKind::Communication)
    }

    /// Time spent in constant serial work.
    pub fn constant_serial_time(&self) -> f64 {
        self.time_in(PhaseKind::SerialConstant)
    }

    /// Serial fraction of this run: serial time over total (init excluded).
    pub fn serial_fraction(&self) -> f64 {
        let total = self.total_time();
        if total > 0.0 {
            self.serial_time() / total
        } else {
            0.0
        }
    }

    /// Parallel fraction of this run.
    pub fn parallel_fraction(&self) -> f64 {
        let total = self.total_time();
        if total > 0.0 {
            self.parallel_time() / total
        } else {
            0.0
        }
    }

    /// Merge another profile's records into this one (used when a run is
    /// composed of several instrumented stages).
    pub fn absorb(&mut self, other: RunProfile) {
        self.records.extend(other.records);
    }

    /// Collapse the profile into the model-level section totals used by the
    /// paper's accounting (and by [`mp_model::calibrate::CalibratedParams`]).
    pub fn to_measured_run(&self) -> mp_model::calibrate::MeasuredRun {
        mp_model::calibrate::MeasuredRun {
            threads: self.threads,
            parallel_seconds: self.parallel_time(),
            serial_constant_seconds: self.constant_serial_time(),
            reduction_seconds: self.time_in(PhaseKind::Reduction),
            communication_seconds: self.time_in(PhaseKind::Communication),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: PhaseKind, seconds: f64) -> PhaseRecord {
        PhaseRecord::new(kind, kind.name(), seconds, 4)
    }

    fn sample_profile() -> RunProfile {
        let mut p = RunProfile::new("kmeans", 4);
        p.push(rec(PhaseKind::Init, 5.0));
        p.push(rec(PhaseKind::Parallel, 80.0));
        p.push(rec(PhaseKind::SerialConstant, 2.0));
        p.push(rec(PhaseKind::Reduction, 3.0));
        p.push(rec(PhaseKind::Communication, 1.0));
        p
    }

    #[test]
    fn serial_phases_classified_correctly() {
        assert!(!PhaseKind::Init.is_serial());
        assert!(!PhaseKind::Parallel.is_serial());
        assert!(PhaseKind::SerialConstant.is_serial());
        assert!(PhaseKind::Reduction.is_serial());
        assert!(PhaseKind::Communication.is_serial());
    }

    #[test]
    fn totals_exclude_init() {
        let p = sample_profile();
        assert_eq!(p.total_time(), 86.0);
        assert_eq!(p.total_time_with_init(), 91.0);
    }

    #[test]
    fn section_accessors() {
        let p = sample_profile();
        assert_eq!(p.parallel_time(), 80.0);
        assert_eq!(p.serial_time(), 6.0);
        assert_eq!(p.reduction_time(), 4.0);
        assert_eq!(p.constant_serial_time(), 2.0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let p = sample_profile();
        assert!((p.serial_fraction() + p.parallel_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_has_zero_fractions() {
        let p = RunProfile::new("empty", 1);
        assert_eq!(p.total_time(), 0.0);
        assert_eq!(p.serial_fraction(), 0.0);
        assert_eq!(p.parallel_fraction(), 0.0);
    }

    #[test]
    fn absorb_concatenates_records() {
        let mut a = sample_profile();
        let b = sample_profile();
        let before = a.records.len();
        a.absorb(b);
        assert_eq!(a.records.len(), before * 2);
        assert_eq!(a.parallel_time(), 160.0);
    }

    #[test]
    fn profile_serializes_roundtrip() {
        let p = sample_profile();
        let json = serde_json::to_string(&p).unwrap();
        let back: RunProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
