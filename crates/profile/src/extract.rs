//! Extraction of the paper's model parameters from instrumented runs.
//!
//! Section V-A of the paper describes how the parameters are obtained:
//!
//! * `f` (and `s = 1 − f`) from the single-core run: serial time over total
//!   time, with initialisation excluded,
//! * `fcon` from the single-core time spent in serial sections *without*
//!   reduction operations,
//! * `fcred` (we call it `fred`, the single-core reduction fraction of serial
//!   time) from the single-core reduction time,
//! * `fored` from the *relative increase* of the reduction time over its
//!   single-core value when using multiple cores.
//!
//! [`extract_params`] reproduces exactly that procedure from a set of
//! [`RunProfile`]s, and the result converts into an [`mp_model::AppParams`]
//! ready to be fed to the analytical models.

use serde::{Deserialize, Serialize};

use mp_model::calibrate::{MeasuredRun, RunAccounting};
use mp_model::growth::GrowthFunction;
use mp_model::params::AppParams;
use mp_model::serial_time::fit_fored;

use crate::phase::RunProfile;

/// Parameters extracted from instrumented runs, in the paper's terms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtractedParams {
    /// Workload name.
    pub app: String,
    /// Parallel fraction `f` measured on the single-core run.
    pub f: f64,
    /// Serial fraction `s = 1 − f`.
    pub serial_fraction: f64,
    /// Constant fraction of the serial time, `fcon`.
    pub fcon: f64,
    /// Reduction fraction of the serial time, `fred`.
    pub fred: f64,
    /// Fitted reduction-overhead coefficient, `fored`.
    pub fored: f64,
    /// Normalised serial-section time per thread count (Figure 2(b)/(c) data).
    pub serial_growth: Vec<(usize, f64)>,
    /// Measured speedups per thread count, relative to the single-core run
    /// (Figure 2(a) data).
    pub speedups: Vec<(usize, f64)>,
}

impl ExtractedParams {
    /// Convert to the analytical-model parameter set. The critical-section
    /// fraction is reported as zero (the workloads use no locks on their hot
    /// paths, matching the paper's observation that critical sections are
    /// negligible).
    pub fn to_app_params(&self) -> AppParams {
        AppParams::new(
            self.app.clone(),
            self.f.clamp(0.0, 1.0),
            self.fcon.clamp(0.0, 1.0),
            self.fored.max(0.0),
            0.0,
        )
        .expect("extracted parameters are valid fractions")
    }
}

/// Normalised serial-section growth: serial time at each thread count divided
/// by the serial time of the single-thread profile (Figure 2(b)/(c)).
///
/// Profiles are matched by thread count; the baseline is the profile with
/// `threads == 1`. Returns an empty vector if no single-thread profile exists
/// or its serial time is zero.
pub fn serial_growth(profiles: &[RunProfile]) -> Vec<(usize, f64)> {
    let base = match profiles.iter().find(|p| p.threads == 1) {
        Some(b) if b.serial_time() > 0.0 => b.serial_time(),
        _ => return Vec::new(),
    };
    let mut series: Vec<(usize, f64)> =
        profiles.iter().map(|p| (p.threads, p.serial_time() / base)).collect();
    series.sort_by_key(|&(t, _)| t);
    series
}

/// Measured speedup at each thread count relative to the single-thread run
/// (total time excluding initialisation), i.e. the Figure 2(a) series.
pub fn speedup_series(profiles: &[RunProfile]) -> Vec<(usize, f64)> {
    let base = match profiles.iter().find(|p| p.threads == 1) {
        Some(b) if b.total_time() > 0.0 => b.total_time(),
        _ => return Vec::new(),
    };
    let mut series: Vec<(usize, f64)> = profiles
        .iter()
        .map(|p| (p.threads, base / p.total_time().max(f64::MIN_POSITIVE)))
        .collect();
    series.sort_by_key(|&(t, _)| t);
    series
}

/// Normalised reduction-time growth: reduction time at each thread count over
/// the single-thread reduction time. This is the series `fored` is fitted
/// from ("the relative increase in reduction operation time over fcred when
/// using multiple cores").
pub fn reduction_growth(profiles: &[RunProfile]) -> Vec<(usize, f64)> {
    let base = match profiles.iter().find(|p| p.threads == 1) {
        Some(b) if b.reduction_time() > 0.0 => b.reduction_time(),
        _ => return Vec::new(),
    };
    let mut series: Vec<(usize, f64)> =
        profiles.iter().map(|p| (p.threads, p.reduction_time() / base)).collect();
    series.sort_by_key(|&(t, _)| t);
    series
}

/// Extract the full parameter set from section totals ([`MeasuredRun`]s) of
/// the same workload at different thread counts. This is the streaming core:
/// the phase-graph scheduler's record sink aggregates straight into
/// [`MeasuredRun`]s, so extraction never needs the flat per-phase record
/// lists. A single-thread run must be present; multi-thread runs refine the
/// `fored` fit and populate the growth/speedup series.
///
/// `growth` selects the growth-function shape assumed when fitting `fored`
/// (the paper uses linear for all three applications).
pub fn extract_params_from_runs(
    app: &str,
    runs: &[MeasuredRun],
    growth: &GrowthFunction,
) -> Option<ExtractedParams> {
    // The Section V-A accounting (baseline fractions + series) is shared
    // with model calibration so the two paths cannot diverge.
    let accounting = RunAccounting::from_runs(runs).ok()?;
    let RunAccounting { f, serial_fraction, fcon, fred, serial_multipliers, speedups } = accounting;

    // Fit fored from the growth of the *serial* section, which is what the
    // paper plots; the fit solves multiplier(p) − 1 = fred·fored·grow(p).
    let fored = fit_fored(fred, growth, &serial_multipliers).unwrap_or(0.0);

    Some(ExtractedParams {
        app: app.to_string(),
        f,
        serial_fraction,
        fcon,
        fred,
        fored,
        serial_growth: serial_multipliers,
        speedups,
    })
}

/// Extract the full parameter set from a collection of profiles of the same
/// workload at different thread counts (the post-hoc adapter over
/// [`extract_params_from_runs`]).
pub fn extract_params(profiles: &[RunProfile], growth: &GrowthFunction) -> Option<ExtractedParams> {
    let base = profiles.iter().find(|p| p.threads == 1)?;
    let runs: Vec<MeasuredRun> = profiles.iter().map(RunProfile::to_measured_run).collect();
    extract_params_from_runs(&base.app, &runs, growth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::{PhaseKind, PhaseRecord};

    /// Build a synthetic profile following the extended model exactly:
    /// parallel time f/p, constant serial fcon_abs, reduction
    /// fred_abs·(1 + fored·(p−1)).
    fn synthetic_profile(app: &str, p: usize, f: f64, fcon: f64, fored: f64) -> RunProfile {
        let s = 1.0 - f;
        let fcon_abs = s * fcon;
        let fred_abs = s * (1.0 - fcon);
        let mut profile = RunProfile::new(app, p);
        let push = |profile: &mut RunProfile, kind, seconds| {
            profile.push(PhaseRecord::new(kind, "x", seconds, p))
        };
        push(&mut profile, PhaseKind::Init, 0.01);
        push(&mut profile, PhaseKind::Parallel, f / p as f64);
        push(&mut profile, PhaseKind::SerialConstant, fcon_abs);
        push(&mut profile, PhaseKind::Reduction, fred_abs * (1.0 + fored * (p as f64 - 1.0)));
        profile
    }

    fn synthetic_profiles(f: f64, fcon: f64, fored: f64) -> Vec<RunProfile> {
        [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&p| synthetic_profile("synthetic", p, f, fcon, fored))
            .collect()
    }

    #[test]
    fn extraction_recovers_known_parameters() {
        let f = 0.99;
        let fcon = 0.6;
        let fored = 0.8;
        let profiles = synthetic_profiles(f, fcon, fored);
        let ex = extract_params(&profiles, &GrowthFunction::Linear).unwrap();
        assert!((ex.f - f).abs() < 1e-9, "f: {}", ex.f);
        assert!((ex.fcon - fcon).abs() < 1e-9, "fcon: {}", ex.fcon);
        assert!((ex.fred - (1.0 - fcon)).abs() < 1e-9);
        assert!((ex.fored - fored).abs() < 1e-6, "fored: {}", ex.fored);
    }

    #[test]
    fn extraction_roundtrips_into_app_params() {
        let profiles = synthetic_profiles(0.999, 0.57, 0.72);
        let ex = extract_params(&profiles, &GrowthFunction::Linear).unwrap();
        let params = ex.to_app_params();
        assert!((params.f - 0.999).abs() < 1e-9);
        assert!((params.split.fcon - 0.57).abs() < 1e-9);
        assert!((params.fored - 0.72).abs() < 1e-6);
    }

    #[test]
    fn serial_growth_is_normalised_to_single_thread() {
        let profiles = synthetic_profiles(0.99, 0.5, 1.0);
        let growth = serial_growth(&profiles);
        assert_eq!(growth[0], (1, 1.0));
        // At 16 threads: 0.5 + 0.5·(1 + 15) = 8.5
        let (_, g16) = growth.iter().find(|(t, _)| *t == 16).copied().unwrap();
        assert!((g16 - 8.5).abs() < 1e-9);
    }

    #[test]
    fn speedup_series_reflects_parallel_scaling() {
        let profiles = synthetic_profiles(0.999, 0.6, 0.1);
        let speedups = speedup_series(&profiles);
        let (_, s16) = speedups.iter().find(|(t, _)| *t == 16).copied().unwrap();
        assert!(s16 > 10.0 && s16 <= 16.0, "got {s16}");
        // Monotone increasing for this low-overhead configuration.
        for w in speedups.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn reduction_growth_tracks_only_the_merging_phase() {
        let profiles = synthetic_profiles(0.99, 0.5, 1.0);
        let growth = reduction_growth(&profiles);
        let (_, g16) = growth.iter().find(|(t, _)| *t == 16).copied().unwrap();
        // fred_abs·(1 + 15)/fred_abs = 16
        assert!((g16 - 16.0).abs() < 1e-9);
    }

    #[test]
    fn extraction_without_single_thread_run_is_none() {
        let profiles = vec![synthetic_profile("x", 4, 0.99, 0.5, 0.5)];
        assert!(extract_params(&profiles, &GrowthFunction::Linear).is_none());
        assert!(serial_growth(&profiles).is_empty());
        assert!(speedup_series(&profiles).is_empty());
    }

    #[test]
    fn zero_reduction_workload_extracts_zero_overhead() {
        // fcon = 1.0 → no reduction at all → fored must come out 0.
        let profiles = synthetic_profiles(0.99, 1.0, 0.0);
        let ex = extract_params(&profiles, &GrowthFunction::Linear).unwrap();
        assert_eq!(ex.fred, 0.0);
        assert_eq!(ex.fored, 0.0);
    }

    #[test]
    fn logarithmic_fit_recovers_log_grown_overhead() {
        // Build profiles whose reduction grows logarithmically and fit with the
        // matching growth function.
        let f = 0.99;
        let fcon = 0.4;
        let fored = 0.6;
        let s = 1.0 - f;
        let profiles: Vec<RunProfile> = [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&p| {
                let mut profile = RunProfile::new("log-app", p);
                profile.push(PhaseRecord::new(PhaseKind::Parallel, "par", f / p as f64, p));
                profile.push(PhaseRecord::new(PhaseKind::SerialConstant, "ser", s * fcon, p));
                profile.push(PhaseRecord::new(
                    PhaseKind::Reduction,
                    "red",
                    s * (1.0 - fcon) * (1.0 + fored * (p as f64).log2()),
                    p,
                ));
                profile
            })
            .collect();
        let ex = extract_params(&profiles, &GrowthFunction::Logarithmic).unwrap();
        assert!((ex.fored - fored).abs() < 1e-6, "got {}", ex.fored);
    }
}
