//! Experiment-report plumbing: serialisable rows and plain-text tables.
//!
//! The figure harness (`mp-bench`) prints every reproduced table and figure as
//! rows of labelled numeric columns; this module holds the shared row type and
//! a small fixed-width text renderer so all experiments format identically.

use serde::{Deserialize, Serialize};

/// One row of an experiment table: a label plus named numeric columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableRow {
    /// Row label (e.g. the application or design-point name).
    pub label: String,
    /// Ordered `(column name, value)` pairs.
    pub values: Vec<(String, f64)>,
}

impl TableRow {
    /// Create a row with a label and no values.
    pub fn new(label: impl Into<String>) -> Self {
        TableRow { label: label.into(), values: Vec::new() }
    }

    /// Append a column (builder-style).
    pub fn with(mut self, column: impl Into<String>, value: f64) -> Self {
        self.values.push((column.into(), value));
        self
    }

    /// Look up a column value by name.
    pub fn get(&self, column: &str) -> Option<f64> {
        self.values.iter().find(|(c, _)| c == column).map(|(_, v)| *v)
    }
}

/// Render rows as a fixed-width text table. The header is the ordered union
/// of all rows' column names (first-seen order), so rows with differing column
/// sets — e.g. symmetric (`r=..`) and asymmetric (`rl=..`) sweeps in one
/// figure — render side by side, with `-` marking absent values. Values are
/// printed with `precision` decimals.
pub fn render_table(title: &str, rows: &[TableRow], precision: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if rows.is_empty() {
        out.push_str("(no rows)\n");
        return out;
    }
    let mut columns: Vec<&str> = Vec::new();
    for row in rows {
        for (c, _) in &row.values {
            if !columns.contains(&c.as_str()) {
                columns.push(c.as_str());
            }
        }
    }
    let label_width =
        rows.iter().map(|r| r.label.len()).chain(std::iter::once("label".len())).max().unwrap_or(5)
            + 2;
    let col_width = columns.iter().map(|c| c.len()).max().unwrap_or(8).max(precision + 6) + 2;

    out.push_str(&format!("{:<label_width$}", "label"));
    for c in &columns {
        out.push_str(&format!("{:>col_width$}", c));
    }
    out.push('\n');
    out.push_str(&"-".repeat(label_width + col_width * columns.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:<label_width$}", row.label));
        for c in &columns {
            match row.get(c) {
                Some(v) => out.push_str(&format!("{:>col_width$.precision$}", v)),
                None => out.push_str(&format!("{:>col_width$}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Serialise rows to pretty JSON (for machine-readable experiment archives).
pub fn to_json(rows: &[TableRow]) -> String {
    serde_json::to_string_pretty(rows).expect("table rows always serialise")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<TableRow> {
        vec![
            TableRow::new("kmeans").with("f", 0.99985).with("fred", 0.43),
            TableRow::new("fuzzy").with("f", 0.99998).with("fred", 0.35),
        ]
    }

    #[test]
    fn builder_and_get() {
        let r = TableRow::new("x").with("a", 1.0).with("b", 2.0);
        assert_eq!(r.get("a"), Some(1.0));
        assert_eq!(r.get("b"), Some(2.0));
        assert_eq!(r.get("c"), None);
    }

    #[test]
    fn render_contains_all_labels_and_columns() {
        let text = render_table("Table II", &rows(), 5);
        assert!(text.contains("Table II"));
        assert!(text.contains("kmeans"));
        assert!(text.contains("fuzzy"));
        assert!(text.contains("fred"));
        assert!(text.contains("0.99985"));
    }

    #[test]
    fn render_empty_table() {
        let text = render_table("empty", &[], 2);
        assert!(text.contains("(no rows)"));
    }

    #[test]
    fn missing_columns_render_as_dash() {
        let rows = vec![
            TableRow::new("a").with("x", 1.0).with("y", 2.0),
            TableRow::new("b").with("x", 3.0),
        ];
        let text = render_table("t", &rows, 1);
        assert!(text.contains('-'));
    }

    #[test]
    fn header_is_the_union_of_all_row_columns() {
        let rows =
            vec![TableRow::new("sym").with("r=1", 1.0), TableRow::new("asym").with("rl=2", 2.0)];
        let text = render_table("t", &rows, 1);
        assert!(text.contains("r=1"));
        assert!(text.contains("rl=2"));
        assert!(text.contains("2.0"));
    }

    #[test]
    fn json_roundtrip() {
        let json = to_json(&rows());
        let back: Vec<TableRow> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rows());
    }
}
