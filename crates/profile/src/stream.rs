//! Streaming record sinks: from scheduler instrumentation to calibration
//! without intermediate flat record lists.
//!
//! The phase-graph scheduler (`mp-runtime`) emits one [`PhaseRecord`] per
//! executed phase. A [`RecordSink`] receives them as they happen; two sinks
//! are provided:
//!
//! * [`crate::Profiler`] — keeps the full record list (reports, figures),
//! * [`StreamingExtractor`] — folds each record into per-thread-count
//!   [`PhaseTotals`] on the fly, so a whole characterisation sweep reduces to
//!   a handful of running sums from which the paper's parameters
//!   ([`crate::ExtractedParams`]) or a full model calibration
//!   ([`CalibratedParams`]) are derived directly.
//!
//! ```
//! use mp_profile::stream::{RecordSink, StreamingExtractor};
//! use mp_profile::{PhaseKind, PhaseRecord};
//!
//! let extractor = StreamingExtractor::new("demo");
//! for threads in [1usize, 2, 4] {
//!     let sink = extractor.run_sink(threads);
//!     // ... the scheduler records phases into `sink` during the run ...
//!     sink.record(PhaseRecord::new(PhaseKind::Parallel, "work", 1.0 / threads as f64, threads));
//!     sink.record(PhaseRecord::new(PhaseKind::Reduction, "merge", 1e-3 * threads as f64, threads));
//!     sink.record(PhaseRecord::new(PhaseKind::SerialConstant, "check", 1e-3, threads));
//! }
//! let calibrated = extractor.calibrate().unwrap();
//! assert!(calibrated.app_params().f > 0.9);
//! ```

use std::collections::BTreeMap;

use parking_lot::Mutex;

use mp_model::calibrate::{CalibratedParams, MeasuredRun};
use mp_model::error::ModelError;
use mp_model::growth::GrowthFunction;

use crate::extract::{extract_params_from_runs, ExtractedParams};
use crate::phase::{PhaseKind, PhaseRecord, RunProfile};
use crate::profiler::Profiler;

/// A consumer of phase records, fed live by the phase-graph scheduler.
pub trait RecordSink: Sync {
    /// Whether the sink wants records at all. Schedulers may skip the timing
    /// overhead entirely when this returns `false`.
    fn is_live(&self) -> bool {
        true
    }

    /// Receive one completed phase record.
    fn record(&self, record: PhaseRecord);
}

impl RecordSink for Profiler {
    fn is_live(&self) -> bool {
        self.is_enabled()
    }

    fn record(&self, record: PhaseRecord) {
        self.record_phase(record);
    }
}

/// A sink that drops everything (uninstrumented runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl RecordSink for NullSink {
    fn is_live(&self) -> bool {
        false
    }

    fn record(&self, _record: PhaseRecord) {}
}

/// Broadcast every record to both sinks (e.g. keep a full profile *and*
/// stream the totals).
#[derive(Debug)]
pub struct TeeSink<'a, A: RecordSink + ?Sized, B: RecordSink + ?Sized> {
    a: &'a A,
    b: &'a B,
}

impl<'a, A: RecordSink + ?Sized, B: RecordSink + ?Sized> TeeSink<'a, A, B> {
    /// Combine two sinks.
    pub fn new(a: &'a A, b: &'a B) -> Self {
        TeeSink { a, b }
    }
}

impl<A: RecordSink + ?Sized, B: RecordSink + ?Sized> RecordSink for TeeSink<'_, A, B> {
    fn is_live(&self) -> bool {
        self.a.is_live() || self.b.is_live()
    }

    fn record(&self, record: PhaseRecord) {
        if self.a.is_live() {
            self.a.record(record.clone());
        }
        if self.b.is_live() {
            self.b.record(record);
        }
    }
}

/// Running per-section sums of one run (one thread count). This is all the
/// paper's parameter extraction ever reads from a run, so streaming into it
/// loses nothing relative to keeping the flat record list.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTotals {
    /// Initialisation time (excluded from the paper's accounting).
    pub init: f64,
    /// Parallel-section time.
    pub parallel: f64,
    /// Constant serial time.
    pub serial_constant: f64,
    /// Merging (reduction) time.
    pub reduction: f64,
    /// Merge-communication time.
    pub communication: f64,
    /// Number of records folded in.
    pub records: usize,
}

impl PhaseTotals {
    /// Fold one record into the totals.
    pub fn add(&mut self, kind: PhaseKind, seconds: f64) {
        match kind {
            PhaseKind::Init => self.init += seconds,
            PhaseKind::Parallel => self.parallel += seconds,
            PhaseKind::SerialConstant => self.serial_constant += seconds,
            PhaseKind::Reduction => self.reduction += seconds,
            PhaseKind::Communication => self.communication += seconds,
        }
        self.records += 1;
    }

    /// The model-level view of these totals.
    pub fn to_measured_run(&self, threads: usize) -> MeasuredRun {
        MeasuredRun {
            threads,
            parallel_seconds: self.parallel,
            serial_constant_seconds: self.serial_constant,
            reduction_seconds: self.reduction,
            communication_seconds: self.communication,
        }
    }
}

/// Streams scheduler records of a whole thread sweep into per-thread-count
/// totals and derives the paper's parameters from them.
///
/// One extractor covers one workload; obtain a [`RunSink`] per run with
/// [`StreamingExtractor::run_sink`] and hand it to the scheduler. Records of
/// repeated runs at the same thread count accumulate into the same bucket
/// (use a fresh extractor per sweep).
#[derive(Debug)]
pub struct StreamingExtractor {
    app: String,
    totals: Mutex<BTreeMap<usize, PhaseTotals>>,
}

impl StreamingExtractor {
    /// An empty extractor for workload `app`.
    pub fn new(app: impl Into<String>) -> Self {
        StreamingExtractor { app: app.into(), totals: Mutex::new(BTreeMap::new()) }
    }

    /// The workload name.
    pub fn app(&self) -> &str {
        &self.app
    }

    /// A sink that buckets records under `threads` (the run's thread count —
    /// *not* per-record thread counts, which limited-scaling phases lower).
    pub fn run_sink(&self, threads: usize) -> RunSink<'_> {
        assert!(threads > 0, "threads must be positive");
        RunSink { extractor: self, threads }
    }

    /// Post-hoc adapter: fold an already-collected profile into the totals.
    pub fn absorb_profile(&self, profile: &RunProfile) {
        let mut totals = self.totals.lock();
        let bucket = totals.entry(profile.threads).or_default();
        for record in &profile.records {
            bucket.add(record.kind, record.seconds);
        }
    }

    /// Thread counts observed so far.
    pub fn thread_counts(&self) -> Vec<usize> {
        self.totals.lock().keys().copied().collect()
    }

    /// Whether any records have been received.
    pub fn is_empty(&self) -> bool {
        self.totals.lock().is_empty()
    }

    /// The aggregated section totals as model-level runs, ordered by thread
    /// count.
    pub fn measured_runs(&self) -> Vec<MeasuredRun> {
        self.totals.lock().iter().map(|(&threads, t)| t.to_measured_run(threads)).collect()
    }

    /// Extract the paper's parameters assuming the given growth shape
    /// (`None` without a single-thread run).
    pub fn extract(&self, growth: &GrowthFunction) -> Option<ExtractedParams> {
        extract_params_from_runs(&self.app, &self.measured_runs(), growth)
    }

    /// Fit a full calibration (parameters *plus* best growth shape).
    ///
    /// # Errors
    /// Propagates [`ModelError::Calibration`] when the sweep lacks a usable
    /// single-thread baseline.
    pub fn calibrate(&self) -> Result<CalibratedParams, ModelError> {
        CalibratedParams::fit(self.app.clone(), &self.measured_runs())
    }
}

/// The per-run sink handed to the scheduler; tags every record with its run's
/// thread count.
#[derive(Debug)]
pub struct RunSink<'a> {
    extractor: &'a StreamingExtractor,
    threads: usize,
}

impl RecordSink for RunSink<'_> {
    fn record(&self, record: PhaseRecord) {
        self.extractor
            .totals
            .lock()
            .entry(self.threads)
            .or_default()
            .add(record.kind, record.seconds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_synthetic(extractor: &StreamingExtractor, f: f64, fcon: f64, fored: f64) {
        let s = 1.0 - f;
        for p in [1usize, 2, 4, 8, 16] {
            let sink = extractor.run_sink(p);
            sink.record(PhaseRecord::new(PhaseKind::Init, "init", 0.01, p));
            sink.record(PhaseRecord::new(PhaseKind::Parallel, "par", f / p as f64, p));
            sink.record(PhaseRecord::new(PhaseKind::SerialConstant, "ser", s * fcon, p));
            sink.record(PhaseRecord::new(
                PhaseKind::Reduction,
                "red",
                s * (1.0 - fcon) * (1.0 + fored * (p as f64 - 1.0)),
                p,
            ));
        }
    }

    #[test]
    fn streamed_extraction_matches_post_hoc_extraction() {
        let streaming = StreamingExtractor::new("synthetic");
        feed_synthetic(&streaming, 0.99, 0.6, 0.8);
        let ex = streaming.extract(&GrowthFunction::Linear).unwrap();
        assert!((ex.f - 0.99).abs() < 1e-9);
        assert!((ex.fcon - 0.6).abs() < 1e-9);
        assert!((ex.fored - 0.8).abs() < 1e-6);
        assert_eq!(ex.serial_growth.len(), 5);
    }

    #[test]
    fn streamed_calibration_selects_linear_growth() {
        let streaming = StreamingExtractor::new("synthetic");
        feed_synthetic(&streaming, 0.995, 0.5, 1.2);
        let calibrated = streaming.calibrate().unwrap();
        assert_eq!(calibrated.growth(), &GrowthFunction::Linear);
        assert!((calibrated.app_params().fored - 1.2).abs() < 1e-6);
    }

    #[test]
    fn absorb_profile_and_run_sink_agree() {
        let via_sink = StreamingExtractor::new("x");
        let via_profile = StreamingExtractor::new("x");
        for p in [1usize, 4] {
            let mut profile = RunProfile::new("x", p);
            let sink = via_sink.run_sink(p);
            for (kind, secs) in
                [(PhaseKind::Parallel, 1.0 / p as f64), (PhaseKind::Reduction, 0.01 * p as f64)]
            {
                let record = PhaseRecord::new(kind, "r", secs, p);
                sink.record(record.clone());
                profile.push(record);
            }
            via_profile.absorb_profile(&profile);
        }
        assert_eq!(via_sink.measured_runs(), via_profile.measured_runs());
    }

    #[test]
    fn totals_bucket_by_run_not_by_record_threads() {
        // A limited-scaling phase records fewer threads than the run; it must
        // still land in the run's bucket.
        let extractor = StreamingExtractor::new("hop");
        let sink = extractor.run_sink(8);
        sink.record(PhaseRecord::new(PhaseKind::Parallel, "build-tree", 0.5, 4));
        sink.record(PhaseRecord::new(PhaseKind::Parallel, "density", 1.0, 8));
        assert_eq!(extractor.thread_counts(), vec![8]);
        let runs = extractor.measured_runs();
        assert!((runs[0].parallel_seconds - 1.5).abs() < 1e-12);
    }

    #[test]
    fn null_sink_is_dead_and_tee_combines() {
        let null = NullSink;
        assert!(!null.is_live());
        let profiler = Profiler::new("tee", 2);
        let extractor = StreamingExtractor::new("tee");
        let run = extractor.run_sink(2);
        let tee = TeeSink::new(&profiler, &run);
        assert!(tee.is_live());
        tee.record(PhaseRecord::new(PhaseKind::Parallel, "p", 1.0, 2));
        assert_eq!(profiler.record_count(), 1);
        assert!(!extractor.is_empty());
    }

    #[test]
    fn empty_extractor_yields_nothing() {
        let extractor = StreamingExtractor::new("empty");
        assert!(extractor.is_empty());
        assert!(extractor.extract(&GrowthFunction::Linear).is_none());
        assert!(extractor.calibrate().is_err());
    }
}
