//! # mp-profile — phase instrumentation and Amdahl-parameter extraction
//!
//! The reproduced paper derives its model parameters by timing the individual
//! *sections* of each application: initialisation, the parallel section, the
//! constant serial section and the merging (reduction) section
//! (Section IV/V-A). This crate provides:
//!
//! * [`phase`] — the phase taxonomy ([`PhaseKind`]) and per-run profiles
//!   ([`RunProfile`]) holding one timed record per executed phase,
//! * [`profiler`] — a thread-safe [`Profiler`] that wraps closures in
//!   wall-clock timers (for real executions) and accepts externally computed
//!   durations (for the timing simulator),
//! * [`extract`] — derivation of the paper's parameters (`f`, `fcon`, `fred`,
//!   `fored`, speedups, serial-growth series) from section totals
//!   ([`mp_model::calibrate::MeasuredRun`]) or from sets of profiles taken at
//!   different thread counts,
//! * [`stream`] — live [`stream::RecordSink`]s: the phase-graph scheduler
//!   streams its instrumented records straight into a
//!   [`stream::StreamingExtractor`], which folds them into per-thread-count
//!   totals and calibrates the model without flat record lists,
//! * [`report`] — serialisable experiment rows and plain-text table rendering
//!   shared by the figure harness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod extract;
pub mod phase;
pub mod profiler;
pub mod report;
pub mod stream;

pub use extract::{
    extract_params, extract_params_from_runs, serial_growth, speedup_series, ExtractedParams,
};
pub use phase::{PhaseKind, PhaseRecord, RunProfile};
pub use profiler::Profiler;
pub use report::{render_table, TableRow};
pub use stream::{NullSink, RecordSink, StreamingExtractor, TeeSink};
