//! Runtime SIMD dispatch shared by every lane kernel in the workspace.
//!
//! The evaluation hot paths (mp-dse's `evaluate_batch_prepared`, mp-cmpsim's
//! timing walk, the cache-key hashing loop) each exist twice: a portable
//! scalar implementation — the *reference* — and an explicit-width lane
//! kernel using `core::arch` x86-64 intrinsics. Which one runs is decided
//! here, once per process, from runtime CPU feature detection: hosts without
//! the required lanes (or non-x86 targets) silently take the scalar path.
//! No compile-time feature flag is required for correctness.
//!
//! Lane kernels are bit-identical to the scalar reference (they perform the
//! same operations in the same association order, per the [`crate::prepared`]
//! parity contract), so switching levels never changes results — only
//! throughput. That invariant is what lets the forced-scalar override below
//! be a plain process-global: tests and A/B harnesses may toggle it at any
//! time without racing on correctness.
//!
//! ## Forcing the scalar path
//!
//! * environment: set `MP_SIMD_FORCE_SCALAR=1` (read once, at first dispatch);
//! * programmatic: [`set_forced_scalar`] — used by `ServiceConfig` and the
//!   bench harness's `--force-scalar` flag for interleaved A/B runs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Instruction-set level the lane kernels may use, decided at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar reference path. Always available.
    Scalar,
    /// 256-bit AVX2 lanes (4×f64 / 4×u64). x86-64 only, detected at runtime.
    Avx2,
}

/// Hardware capability, detected once per process.
fn detected() -> SimdLevel {
    static CELL: OnceLock<SimdLevel> = OnceLock::new();
    *CELL.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
        }
        SimdLevel::Scalar
    })
}

/// Whether the `MP_SIMD_FORCE_SCALAR` environment variable asked for the
/// scalar path. Read once; `"0"` and empty both mean "not forced".
fn env_forced_scalar() -> bool {
    static CELL: OnceLock<bool> = OnceLock::new();
    *CELL.get_or_init(|| {
        std::env::var("MP_SIMD_FORCE_SCALAR").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
    })
}

static FORCED_SCALAR: AtomicBool = AtomicBool::new(false);

/// Programmatically force (or un-force) the scalar path for the whole
/// process, overriding hardware detection. Safe to toggle at any time: both
/// paths are bit-identical, so in-flight work is unaffected beyond speed.
pub fn set_forced_scalar(forced: bool) {
    FORCED_SCALAR.store(forced, Ordering::Relaxed);
}

/// Whether the scalar path is currently forced (by environment or
/// [`set_forced_scalar`]).
pub fn forced_scalar() -> bool {
    env_forced_scalar() || FORCED_SCALAR.load(Ordering::Relaxed)
}

/// The level lane kernels should dispatch on *right now*: the detected
/// hardware level, downgraded to [`SimdLevel::Scalar`] while the forced
/// override is active.
pub fn level() -> SimdLevel {
    if forced_scalar() {
        SimdLevel::Scalar
    } else {
        detected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_scalar_overrides_detection() {
        // Whatever the hardware, forcing scalar must win, and un-forcing
        // must restore the detected level.
        let hw = detected();
        set_forced_scalar(true);
        assert_eq!(level(), SimdLevel::Scalar);
        set_forced_scalar(false);
        if !env_forced_scalar() {
            assert_eq!(level(), hw);
        }
    }

    #[test]
    fn non_x86_targets_report_scalar() {
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(detected(), SimdLevel::Scalar);
    }
}
