//! Calibration: fitting the paper's model parameters to measured phase times.
//!
//! The extraction in `mp-profile` reads one instrumented run at a time; this
//! module closes the loop the paper describes in Section V-A — *measure →
//! extract `f`, `fred`, `fcon` → model* — by fitting a complete
//! [`CalibratedParams`] set (application parameters **plus** a growth
//! function) to a sweep of [`MeasuredRun`]s across thread counts:
//!
//! * `f`, `fcon`, `fred` come from the single-thread run exactly as in the
//!   paper (initialisation excluded),
//! * the reduction-overhead coefficient `fored` and the growth *shape* are
//!   chosen together: every candidate shape (constant, linear, logarithmic,
//!   super-linear) is least-squares fitted to the observed serial-section
//!   multipliers and the shape with the smallest residual wins,
//! * the raw observations are additionally preserved as a
//!   [`GrowthFunction::Measured`] curve, so a consumer can choose between the
//!   best closed form (extrapolates smoothly) and the exact empirical curve
//!   (reproduces the measurements bit-for-bit at the measured counts).
//!
//! The result plugs straight into [`crate::extended::ExtendedModel`] and the
//! design-space backends.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::fingerprint::Fnv64;
use crate::growth::GrowthFunction;
use crate::params::AppParams;
use crate::serial_time::fit_fored;

/// Aggregated per-phase times of one instrumented run at a fixed thread
/// count. This is the model-level view of a run profile: only the section
/// totals the paper's accounting uses, with initialisation already excluded.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredRun {
    /// Thread count of the run.
    pub threads: usize,
    /// Total time in the parallel section, in seconds.
    pub parallel_seconds: f64,
    /// Total time in constant serial work, in seconds.
    pub serial_constant_seconds: f64,
    /// Total time in the merging (reduction) phase, in seconds.
    pub reduction_seconds: f64,
    /// Total time in merge communication, in seconds (zero for shared-memory
    /// runs; the simulator reports it separately).
    pub communication_seconds: f64,
}

impl MeasuredRun {
    /// A run with no communication time (the common shared-memory case).
    pub fn new(
        threads: usize,
        parallel_seconds: f64,
        serial_constant_seconds: f64,
        reduction_seconds: f64,
    ) -> Self {
        MeasuredRun {
            threads,
            parallel_seconds,
            serial_constant_seconds,
            reduction_seconds,
            communication_seconds: 0.0,
        }
    }

    /// Total time of the run (init excluded, as in the paper's accounting).
    pub fn total_seconds(&self) -> f64 {
        self.parallel_seconds + self.serial_seconds()
    }

    /// Time in the serial section: constant + reduction + communication.
    pub fn serial_seconds(&self) -> f64 {
        self.serial_constant_seconds + self.reduction_seconds + self.communication_seconds
    }

    /// Time in the merging phase (reduction + its communication).
    pub fn merge_seconds(&self) -> f64 {
        self.reduction_seconds + self.communication_seconds
    }
}

/// The paper's Section V-A accounting over a sweep of measured runs: the
/// single-thread fractions plus the per-thread-count series. Computed once
/// here and shared by the streaming extraction (`mp-profile`) and
/// [`CalibratedParams::fit`], so the two can never disagree on the same
/// data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunAccounting {
    /// Parallel fraction `f` of the single-thread run (init excluded).
    pub f: f64,
    /// Measured serial fraction of the single-thread run.
    pub serial_fraction: f64,
    /// Constant fraction of the serial time, `fcon`.
    pub fcon: f64,
    /// Merge fraction of the serial time, `fred`.
    pub fred: f64,
    /// Serial-section multipliers `(threads, serial(p)/serial(1))`, sorted by
    /// thread count — the Figure 2(b)/(c) series.
    pub serial_multipliers: Vec<(usize, f64)>,
    /// Speedups `(threads, total(1)/total(p))`, sorted by thread count — the
    /// Figure 2(a) series.
    pub speedups: Vec<(usize, f64)>,
}

impl RunAccounting {
    /// Compute the accounting from measured runs. Runs may arrive in any
    /// order; duplicate thread counts keep the last observation.
    ///
    /// # Errors
    /// Returns [`ModelError::Calibration`] when no single-thread baseline is
    /// present or its total time is degenerate.
    pub fn from_runs(runs: &[MeasuredRun]) -> Result<Self, ModelError> {
        let mut by_threads: Vec<MeasuredRun> = Vec::new();
        for run in runs {
            match by_threads.iter_mut().find(|r| r.threads == run.threads) {
                Some(slot) => *slot = *run,
                None => by_threads.push(*run),
            }
        }
        by_threads.sort_by_key(|r| r.threads);

        let base = by_threads
            .iter()
            .find(|r| r.threads == 1)
            .copied()
            .ok_or(ModelError::Calibration { what: "no single-thread baseline run" })?;
        let total = base.total_seconds();
        if !(total.is_finite() && total > 0.0) {
            return Err(ModelError::Calibration {
                what: "single-thread total time is not positive",
            });
        }

        let f = (base.parallel_seconds / total).clamp(0.0, 1.0);
        let serial = base.serial_seconds();
        let serial_fraction = (serial / total).clamp(0.0, 1.0);
        let (fcon, fred) = if serial > 0.0 {
            (
                (base.serial_constant_seconds / serial).clamp(0.0, 1.0),
                (base.merge_seconds() / serial).clamp(0.0, 1.0),
            )
        } else {
            (1.0, 0.0)
        };

        let serial_multipliers: Vec<(usize, f64)> = by_threads
            .iter()
            .map(|r| (r.threads, if serial > 0.0 { r.serial_seconds() / serial } else { 1.0 }))
            .collect();
        let speedups: Vec<(usize, f64)> = by_threads
            .iter()
            .map(|r| (r.threads, total / r.total_seconds().max(f64::MIN_POSITIVE)))
            .collect();

        Ok(RunAccounting { f, serial_fraction, fcon, fred, serial_multipliers, speedups })
    }
}

/// One candidate growth shape with its least-squares fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrowthFit {
    /// The candidate shape.
    pub growth: GrowthFunction,
    /// Fitted reduction-overhead coefficient for this shape.
    pub fored: f64,
    /// Root-mean-square residual of the serial-multiplier fit.
    pub rmse: f64,
}

/// A complete calibrated parameter set: application parameters plus the
/// growth function that best explains the measured serial-section growth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibratedParams {
    app: AppParams,
    growth: GrowthFunction,
    fit_rmse: f64,
    serial_multipliers: Vec<(usize, f64)>,
    candidates: Vec<GrowthFit>,
}

/// The candidate growth shapes tried by [`CalibratedParams::fit`], simplest
/// first (ties in residual go to the earlier entry).
fn candidate_shapes() -> Vec<GrowthFunction> {
    vec![
        GrowthFunction::Constant,
        GrowthFunction::Logarithmic,
        GrowthFunction::Linear,
        GrowthFunction::Superlinear(1.25),
        GrowthFunction::Superlinear(1.5),
        GrowthFunction::Superlinear(1.75),
        GrowthFunction::Superlinear(2.0),
    ]
}

impl CalibratedParams {
    /// Fit a calibrated parameter set named `name` to measured runs.
    ///
    /// Requires a single-thread run with positive total time (the paper's
    /// baseline); multi-thread runs constrain the growth fit. Runs may arrive
    /// in any order; duplicate thread counts keep the last observation.
    ///
    /// # Errors
    /// Returns [`ModelError::Calibration`] when no single-thread baseline is
    /// present or its measured times are degenerate.
    pub fn fit(name: impl Into<String>, runs: &[MeasuredRun]) -> Result<Self, ModelError> {
        let accounting = RunAccounting::from_runs(runs)?;
        let RunAccounting { f, fcon, fred, serial_multipliers, .. } = accounting;

        let mut candidates = Vec::new();
        for shape in candidate_shapes() {
            let fored = fit_fored(fred, &shape, &serial_multipliers).unwrap_or(0.0);
            let rmse = fit_rmse(fcon, fred, fored, &shape, &serial_multipliers);
            candidates.push(GrowthFit { growth: shape, fored, rmse });
        }
        let best = candidates
            .iter()
            .min_by(|a, b| a.rmse.partial_cmp(&b.rmse).unwrap_or(std::cmp::Ordering::Equal))
            .cloned()
            .expect("candidate list is never empty");

        let app = AppParams::new(name, f, fcon, best.fored, 0.0)?;
        Ok(CalibratedParams {
            app,
            growth: best.growth,
            fit_rmse: best.rmse,
            serial_multipliers,
            candidates,
        })
    }

    /// The calibrated application parameters (with the best-fit `fored`).
    pub fn app_params(&self) -> &AppParams {
        &self.app
    }

    /// The best-fitting closed-form growth function.
    pub fn growth(&self) -> &GrowthFunction {
        &self.growth
    }

    /// Root-mean-square residual of the winning fit.
    pub fn fit_rmse(&self) -> f64 {
        self.fit_rmse
    }

    /// The observed serial-section multipliers the fit was computed from.
    pub fn serial_multipliers(&self) -> &[(usize, f64)] {
        &self.serial_multipliers
    }

    /// All candidate fits, in the order they were tried.
    pub fn candidates(&self) -> &[GrowthFit] {
        &self.candidates
    }

    /// The empirical growth curve: a [`GrowthFunction::Measured`] that, used
    /// with [`CalibratedParams::exact_app_params`] (`fored = 1`), reproduces
    /// the observed serial multipliers exactly at the measured thread counts
    /// and extrapolates linearly beyond them.
    pub fn exact_growth(&self) -> GrowthFunction {
        let fred = self.app.split.fred;
        if fred <= 0.0 {
            return GrowthFunction::Constant;
        }
        let points: Vec<(f64, f64)> = self
            .serial_multipliers
            .iter()
            .map(|&(p, mult)| (p as f64, ((mult - 1.0) / fred).max(0.0)))
            .collect();
        GrowthFunction::Measured(points)
    }

    /// Application parameters paired with [`CalibratedParams::exact_growth`]:
    /// identical split but `fored = 1`, so the measured curve carries the
    /// whole overhead.
    pub fn exact_app_params(&self) -> AppParams {
        AppParams::new(self.app.name.clone(), self.app.f, self.app.split.fcon, 1.0, 0.0)
            .expect("calibrated fractions are valid")
    }

    /// Serial-section multiplier predicted by the calibrated closed form at
    /// `threads` threads (for fit-quality reports).
    pub fn predicted_multiplier(&self, threads: f64) -> f64 {
        let split = self.app.split;
        split.fcon + split.fred * (1.0 + self.app.fored * self.growth.eval(threads))
    }

    /// Stable content fingerprint, for memoisation-cache salts.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_str(&self.app.name);
        h.write_f64(self.app.f);
        h.write_f64(self.app.split.fcon);
        h.write_f64(self.app.split.fred);
        h.write_f64(self.app.fored);
        h.write_str(&self.growth.label());
        for &(p, m) in &self.serial_multipliers {
            h.write_f64(p as f64);
            h.write_f64(m);
        }
        h.finish()
    }
}

/// RMS residual of `mult(p) ≈ fcon + fred·(1 + fored·grow(p))` over the
/// multi-thread observations (the single-thread point is 1 by construction).
fn fit_rmse(
    fcon: f64,
    fred: f64,
    fored: f64,
    growth: &GrowthFunction,
    observed: &[(usize, f64)],
) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for &(p, mult) in observed {
        if p <= 1 {
            continue;
        }
        let predicted = fcon + fred * (1.0 + fored * growth.eval(p as f64));
        let err = predicted - mult;
        sum += err * err;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build runs following the extended model exactly: parallel f/p, constant
    /// serial fcon·s, reduction fred·s·(1 + fored·grow(p)).
    fn synthetic_runs(f: f64, fcon: f64, fored: f64, growth: &GrowthFunction) -> Vec<MeasuredRun> {
        let s = 1.0 - f;
        [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&p| {
                MeasuredRun::new(
                    p,
                    f / p as f64,
                    s * fcon,
                    s * (1.0 - fcon) * (1.0 + fored * growth.eval(p as f64)),
                )
            })
            .collect()
    }

    #[test]
    fn accounting_sorts_and_dedupes_runs() {
        let mut runs = synthetic_runs(0.99, 0.6, 0.8, &GrowthFunction::Linear);
        runs.reverse();
        // A bogus early duplicate of the 4-thread run must be overridden by
        // the later (real) one.
        runs.insert(0, MeasuredRun::new(4, 9.0, 9.0, 9.0));
        let acc = RunAccounting::from_runs(&runs).unwrap();
        assert!((acc.f - 0.99).abs() < 1e-9);
        assert!((acc.fcon - 0.6).abs() < 1e-9);
        let threads: Vec<usize> = acc.serial_multipliers.iter().map(|&(t, _)| t).collect();
        assert_eq!(threads, vec![1, 2, 4, 8, 16]);
        assert!((acc.serial_multipliers[0].1 - 1.0).abs() < 1e-12);
        assert_eq!(acc.speedups.len(), 5);
        assert!(acc.speedups[4].1 > acc.speedups[0].1);
    }

    #[test]
    fn fit_recovers_linear_parameters() {
        let runs = synthetic_runs(0.99, 0.6, 0.8, &GrowthFunction::Linear);
        let c = CalibratedParams::fit("synthetic", &runs).unwrap();
        assert!((c.app_params().f - 0.99).abs() < 1e-9);
        assert!((c.app_params().split.fcon - 0.6).abs() < 1e-9);
        assert!((c.app_params().split.fred - 0.4).abs() < 1e-9);
        assert!((c.app_params().fored - 0.8).abs() < 1e-6, "fored {}", c.app_params().fored);
        assert_eq!(c.growth(), &GrowthFunction::Linear);
        assert!(c.fit_rmse() < 1e-9);
    }

    #[test]
    fn fit_selects_logarithmic_shape_when_growth_is_logarithmic() {
        let runs = synthetic_runs(0.995, 0.4, 0.6, &GrowthFunction::Logarithmic);
        let c = CalibratedParams::fit("log-app", &runs).unwrap();
        assert_eq!(c.growth(), &GrowthFunction::Logarithmic);
        assert!((c.app_params().fored - 0.6).abs() < 1e-6);
    }

    #[test]
    fn fit_selects_superlinear_shape_for_hop_like_growth() {
        let runs = synthetic_runs(0.999, 0.88, 1.55, &GrowthFunction::Superlinear(1.5));
        let c = CalibratedParams::fit("hop-like", &runs).unwrap();
        assert_eq!(c.growth(), &GrowthFunction::Superlinear(1.5));
        assert!((c.app_params().fored - 1.55).abs() < 1e-6);
    }

    #[test]
    fn zero_merge_workload_calibrates_to_constant_growth() {
        let runs = synthetic_runs(0.99, 1.0, 0.0, &GrowthFunction::Linear);
        let c = CalibratedParams::fit("no-merge", &runs).unwrap();
        assert_eq!(c.app_params().split.fred, 0.0);
        assert_eq!(c.growth(), &GrowthFunction::Constant);
        assert_eq!(c.exact_growth(), GrowthFunction::Constant);
    }

    #[test]
    fn exact_growth_reproduces_observations() {
        let runs = synthetic_runs(0.99, 0.5, 1.2, &GrowthFunction::Superlinear(1.75));
        let c = CalibratedParams::fit("exact", &runs).unwrap();
        let exact = c.exact_growth();
        let app = c.exact_app_params();
        for &(p, mult) in c.serial_multipliers() {
            let predicted = app.split.fcon + app.split.fred * (1.0 + exact.eval(p as f64));
            assert!((predicted - mult).abs() < 1e-9, "p={p}: {predicted} vs {mult}");
        }
    }

    #[test]
    fn fit_without_baseline_is_an_error() {
        let runs = vec![MeasuredRun::new(4, 0.25, 0.003, 0.004)];
        assert!(matches!(CalibratedParams::fit("x", &runs), Err(ModelError::Calibration { .. })));
    }

    #[test]
    fn degenerate_baseline_is_an_error() {
        let runs = vec![MeasuredRun::new(1, 0.0, 0.0, 0.0)];
        assert!(CalibratedParams::fit("x", &runs).is_err());
    }

    #[test]
    fn duplicate_thread_counts_keep_the_last_run() {
        let mut runs = synthetic_runs(0.99, 0.6, 0.8, &GrowthFunction::Linear);
        // Prepend a bogus single-thread run that the real one must override.
        runs.insert(0, MeasuredRun::new(1, 100.0, 100.0, 100.0));
        let c = CalibratedParams::fit("dup", &runs).unwrap();
        assert!((c.app_params().f - 0.99).abs() < 1e-9);
    }

    #[test]
    fn fingerprint_distinguishes_calibrations() {
        let a =
            CalibratedParams::fit("a", &synthetic_runs(0.99, 0.6, 0.8, &GrowthFunction::Linear))
                .unwrap();
        let b =
            CalibratedParams::fit("a", &synthetic_runs(0.99, 0.6, 0.4, &GrowthFunction::Linear))
                .unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.fingerprint());
    }

    #[test]
    fn predicted_multiplier_matches_model_formula() {
        let runs = synthetic_runs(0.99, 0.6, 0.8, &GrowthFunction::Linear);
        let c = CalibratedParams::fit("pred", &runs).unwrap();
        for &(p, mult) in c.serial_multipliers() {
            assert!((c.predicted_multiplier(p as f64) - mult).abs() < 1e-6);
        }
    }
}
