//! # mp-model — extended Amdahl speedup models for merging phases
//!
//! This crate is the primary contribution of the reproduced paper,
//! *Implications of Merging Phases on Scalability of Multi-core Architectures*
//! (Manivannan, Juurlink, Stenström — ICPP 2011).
//!
//! It provides, as closed-form analytical models:
//!
//! * classic **Amdahl's Law** (paper Eq. 1) — [`amdahl`],
//! * the **Hill–Marty** multicore extensions for symmetric and asymmetric chip
//!   multiprocessors under a base-core-equivalent (BCE) area budget
//!   (paper Eq. 2 and Eq. 3) — [`hill_marty`],
//! * the paper's **extended model** in which the serial fraction is split into a
//!   constant part and a *reduction* (merging-phase) part whose overhead grows
//!   with the number of cores (paper Eq. 4 and Eq. 5) — [`extended`],
//! * the **communication-aware** refinement that splits the reduction fraction
//!   into computation and communication and charges the communication to a
//!   network-on-chip topology (paper Eq. 6–8) — [`comm`] and [`topology`],
//! * the **application parameter sets** of Tables II, III and IV — [`params`],
//! * chip/core **design descriptions** under a BCE budget — [`chip`] and
//!   [`perf`],
//! * **design-space exploration** helpers that regenerate the speedup curves of
//!   Figures 3, 4, 5 and 7 — [`explore`],
//! * the predicted **serial-section growth** curves of Figure 2(b)/(d) —
//!   [`serial_time`].
//!
//! ## Conventions
//!
//! All fractions are expressed relative to the *single-core* execution time of
//! the application unless documented otherwise. The split of the serial
//! fraction follows the paper's Figure 1 / Figure 6:
//!
//! ```text
//! total = f (parallel) + s (serial),            s = 1 - f
//! s     = s·fcon  +  s·fred                     (constant + reduction)
//! reduction time at p threads = s·fred·(1 + fored·grow(p))
//! reduction = computation + communication       (communication model only)
//! ```
//!
//! `fcon`, `fred`, `fcomp` and `fcomm` are stored as fractions *of the serial
//! time* (this is how Table II/III of the paper reports them); `fored` is the
//! growth coefficient of the reduction overhead per unit of the growth function
//! (`grow(1) = 0` by construction, so single-core behaviour is unchanged).
//!
//! ## Quick example
//!
//! ```
//! use mp_model::prelude::*;
//!
//! // kmeans parameters from Table II of the paper.
//! let app = AppParams::table2_kmeans();
//! let chip = ChipBudget::new(256.0);
//! let model = ExtendedModel::new(app, GrowthFunction::Linear, PerfModel::Pollack);
//!
//! // Speedup of a symmetric CMP built from 64 cores of 4 BCE each.
//! let design = SymmetricDesign::new(chip, 4.0).unwrap();
//! let with_reduction = model.speedup_symmetric(&design).unwrap();
//! let amdahl_only = hill_marty::symmetric_speedup(
//!     model.params().f, &design, &PerfModel::Pollack).unwrap();
//! assert!(with_reduction < amdahl_only);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod amdahl;
pub mod calibrate;
pub mod catalogue;
pub mod chip;
pub mod comm;
pub mod error;
pub mod explore;
pub mod extended;
pub mod fingerprint;
pub mod growth;
pub mod hill_marty;
pub mod params;
pub mod perf;
pub mod prepared;
pub mod serial_time;
pub mod simd;
pub mod topology;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::amdahl::{amdahl_speedup, amdahl_speedup_limit};
    pub use crate::calibrate::{CalibratedParams, GrowthFit, MeasuredRun, RunAccounting};
    pub use crate::catalogue::CatalogueRegistry;
    pub use crate::chip::{AsymmetricDesign, ChipBudget, SymmetricDesign};
    pub use crate::comm::{CommModel, CommSplit};
    pub use crate::error::ModelError;
    pub use crate::explore::{
        asymmetric_curve, best_asymmetric, best_symmetric, symmetric_curve, DesignPoint,
    };
    pub use crate::extended::ExtendedModel;
    pub use crate::growth::GrowthFunction;
    pub use crate::hill_marty;
    pub use crate::params::{AppParams, SerialSplit};
    pub use crate::perf::PerfModel;
    pub use crate::prepared::PreparedModel;
    pub use crate::serial_time::serial_growth_factor;
    pub use crate::topology::Topology;
}

pub use prelude::*;
