//! Single-core performance as a function of core area (`perf(r)`).
//!
//! The paper (following Hill & Marty and Borkar) assumes that a core built from
//! `r` base-core equivalents (BCE) delivers `sqrt(r)` times the performance of
//! a 1-BCE core — *Pollack's rule*. This module makes the performance model a
//! first-class, swappable component so the design-space studies can be re-run
//! under alternative area/performance assumptions (an ablation the paper's
//! Section V-D invites).

use serde::{Deserialize, Serialize};

use crate::error::{check_positive, ModelError};

/// Performance of a core occupying `r` BCE of chip area, relative to a 1-BCE core.
///
/// All variants satisfy `perf(1) == 1` so that speedups are expressed relative
/// to a single base core, exactly as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum PerfModel {
    /// Pollack's rule: `perf(r) = sqrt(r)`. The paper's default (Section V-D:
    /// "the performance of a core is proportional to the square root of the
    /// area").
    #[default]
    Pollack,
    /// Idealised linear scaling: `perf(r) = r`. Upper bound used for ablation;
    /// under this model big cores are never worse than many small ones.
    Linear,
    /// General power law: `perf(r) = r^exponent`. `Pollack` is `Power(0.5)` and
    /// `Linear` is `Power(1.0)`.
    Power(
        /// Exponent of the power law; typically in `(0, 1]`.
        f64,
    ),
    /// Diminishing-returns model `perf(r) = 1 + k·ln(r)` with `k > 0`,
    /// representing designs where extra area buys ever less single-thread
    /// performance.
    Logarithmic(
        /// Slope `k` of the logarithmic improvement.
        f64,
    ),
}

impl PerfModel {
    /// Evaluate `perf(r)` for a core of `r` BCE.
    ///
    /// # Errors
    /// Returns [`ModelError::NonPositive`] if `r <= 0` or is not finite.
    pub fn perf(&self, r: f64) -> Result<f64, ModelError> {
        let r = check_positive("r", r)?;
        let value = match self {
            PerfModel::Pollack => r.sqrt(),
            PerfModel::Linear => r,
            PerfModel::Power(exp) => r.powf(*exp),
            PerfModel::Logarithmic(k) => 1.0 + k * r.ln(),
        };
        if value.is_finite() && value > 0.0 {
            Ok(value)
        } else {
            Err(ModelError::NonFinite { what: "perf(r)" })
        }
    }

    /// Evaluate `perf(r)`, panicking on invalid input.
    ///
    /// Convenience for plotting code where the inputs are known-valid constants.
    pub fn perf_unchecked(&self, r: f64) -> f64 {
        self.perf(r).expect("perf(r) evaluation failed")
    }

    /// A short, human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PerfModel::Pollack => "pollack-sqrt",
            PerfModel::Linear => "linear",
            PerfModel::Power(_) => "power",
            PerfModel::Logarithmic(_) => "logarithmic",
        }
    }

    /// Like [`PerfModel::name`], but parameterised variants carry their
    /// parameters, so distinct models always label distinctly
    /// (e.g. `"power(0.75)"`, `"logarithmic(0.5)"`).
    pub fn label(&self) -> String {
        match self {
            PerfModel::Power(exp) => format!("power({exp})"),
            PerfModel::Logarithmic(k) => format!("logarithmic({k})"),
            other => other.name().to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pollack_matches_paper_examples() {
        // "a core made up of four BCEs performs twice as high as a single BCE"
        let m = PerfModel::Pollack;
        assert!((m.perf(4.0).unwrap() - 2.0).abs() < 1e-12);
        assert!((m.perf(16.0).unwrap() - 4.0).abs() < 1e-12);
        assert!((m.perf(1.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_models_normalised_at_one_bce() {
        for m in [
            PerfModel::Pollack,
            PerfModel::Linear,
            PerfModel::Power(0.7),
            PerfModel::Logarithmic(0.5),
        ] {
            assert!((m.perf(1.0).unwrap() - 1.0).abs() < 1e-12, "{m:?}");
        }
    }

    #[test]
    fn linear_and_power_one_agree() {
        for r in [1.0, 2.0, 7.5, 64.0] {
            let a = PerfModel::Linear.perf(r).unwrap();
            let b = PerfModel::Power(1.0).perf(r).unwrap();
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn pollack_is_power_half() {
        for r in [1.0, 4.0, 9.0, 256.0] {
            let a = PerfModel::Pollack.perf(r).unwrap();
            let b = PerfModel::Power(0.5).perf(r).unwrap();
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn perf_is_monotone_in_area() {
        for m in [
            PerfModel::Pollack,
            PerfModel::Linear,
            PerfModel::Power(0.3),
            PerfModel::Logarithmic(1.0),
        ] {
            let mut prev = 0.0;
            for r in 1..=64 {
                let p = m.perf(r as f64).unwrap();
                assert!(p > prev, "{m:?} not monotone at r={r}");
                prev = p;
            }
        }
    }

    #[test]
    fn invalid_area_is_rejected() {
        assert!(PerfModel::Pollack.perf(0.0).is_err());
        assert!(PerfModel::Pollack.perf(-4.0).is_err());
        assert!(PerfModel::Pollack.perf(f64::NAN).is_err());
    }

    #[test]
    fn default_is_pollack() {
        assert_eq!(PerfModel::default(), PerfModel::Pollack);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(PerfModel::Pollack.name(), "pollack-sqrt");
        assert_eq!(PerfModel::Linear.name(), "linear");
    }
}
