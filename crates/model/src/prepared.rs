//! Precomputed, borrow-only evaluation of the extended model.
//!
//! [`ExtendedModel`] owns its [`AppParams`] and [`GrowthFunction`], which is
//! the right shape for long-lived models but forces every design-space batch
//! to clone an application name `String` (and, for measured curves, a sample
//! `Vec`) before it can evaluate a single design. [`PreparedModel`] is the
//! hot-path counterpart: it borrows the application and growth function,
//! hoists every design-independent scalar (`f`, `s`, `fcon`, `fred`,
//! `fored`) out of the inner loop once, and reports invalid inputs as `NaN`
//! instead of a `Result`, so the per-design evaluation is a short, branch-light
//! arithmetic kernel with no heap traffic at all.
//!
//! **Bit parity is a hard contract**: for every design, valid or not,
//! [`PreparedModel::speedup_symmetric`] / [`PreparedModel::speedup_asymmetric`]
//! produce exactly the bits the `ExtendedModel` +
//! [`SymmetricDesign`] / [`AsymmetricDesign`] path produces (`NaN` where that
//! path errors). The arithmetic below therefore replicates the owned path's
//! operations and association order verbatim — do not "simplify" expressions
//! here without re-running the bitwise parity tests.
//!
//! [`ExtendedModel`]: crate::extended::ExtendedModel
//! [`SymmetricDesign`]: crate::chip::SymmetricDesign
//! [`AsymmetricDesign`]: crate::chip::AsymmetricDesign

use crate::growth::GrowthFunction;
use crate::params::AppParams;
use crate::perf::PerfModel;

/// The five design-independent scalars of a [`PreparedModel`], exported for
/// lane kernels that re-run the speedup arithmetic outside this crate (e.g.
/// mp-dse's SIMD `evaluate_batch_prepared`).
///
/// **Contract**: a kernel consuming these coefficients must replicate the
/// exact operations and association order of
/// [`PreparedModel::speedup_symmetric_from_parts`] /
/// [`PreparedModel::speedup_asymmetric_from_parts`] — broadcast each
/// coefficient across lanes and apply the same multiply/add/divide sequence —
/// so its results stay bit-identical to the scalar reference. The parity
/// proptests in `tests/sweep_parity.rs` enforce this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupCoefficients {
    /// Parallel fraction `f`.
    pub f: f64,
    /// Serial fraction `s = 1 - f`.
    pub s: f64,
    /// Constant fraction of the serial time.
    pub fcon: f64,
    /// Reduction fraction of the serial time.
    pub fred: f64,
    /// Reduction-overhead coefficient.
    pub fored: f64,
}

/// Design-independent state of one `(application, growth, perf)` combination,
/// borrowed from its owners. Build once per shared-axis run, evaluate many
/// designs.
#[derive(Debug, Clone, Copy)]
pub struct PreparedModel<'a> {
    /// Parallel fraction `f`.
    f: f64,
    /// Serial fraction `s = 1 - f`.
    s: f64,
    /// Constant fraction of the serial time.
    fcon: f64,
    /// Reduction fraction of the serial time.
    fred: f64,
    /// Reduction-overhead coefficient.
    fored: f64,
    growth: &'a GrowthFunction,
    perf: PerfModel,
}

impl<'a> PreparedModel<'a> {
    /// Prepare `(app, growth, perf)` for repeated per-design evaluation.
    pub fn new(app: &'a AppParams, growth: &'a GrowthFunction, perf: PerfModel) -> Self {
        PreparedModel {
            f: app.f,
            s: app.serial_fraction(),
            fcon: app.split.fcon,
            fred: app.split.fred,
            fored: app.fored,
            growth,
            perf,
        }
    }

    /// The growth function the model was prepared over.
    pub fn growth(&self) -> &'a GrowthFunction {
        self.growth
    }

    /// The design-independent scalars, for lane kernels that broadcast them
    /// across lanes. See [`SpeedupCoefficients`] for the parity contract.
    pub fn coefficients(&self) -> SpeedupCoefficients {
        SpeedupCoefficients {
            f: self.f,
            s: self.s,
            fcon: self.fcon,
            fred: self.fred,
            fored: self.fored,
        }
    }

    /// The performance model.
    pub fn perf(&self) -> PerfModel {
        self.perf
    }

    /// `perf(r)` with invalid inputs (and invalid outputs, e.g. a logarithmic
    /// model gone non-positive) collapsed to `NaN` — exactly the cases where
    /// [`PerfModel::perf`] errors.
    pub fn perf_or_nan(&self, r: f64) -> f64 {
        self.perf.perf(r).unwrap_or(f64::NAN)
    }

    /// Growth sample at `threads` merging threads.
    pub fn growth_sample(&self, threads: f64) -> f64 {
        self.growth.eval(threads)
    }

    /// Serial-section multiplier at `threads`, from a precomputed growth
    /// sample. Same expression as [`ExtendedModel::serial_multiplier`].
    ///
    /// [`ExtendedModel::serial_multiplier`]: crate::extended::ExtendedModel::serial_multiplier
    #[inline]
    pub fn serial_multiplier_from_sample(&self, growth_sample: f64) -> f64 {
        self.fcon + self.fred * (1.0 + self.fored * growth_sample)
    }

    /// Effective serial fraction from a precomputed growth sample,
    /// `s · serial_multiplier`.
    #[inline]
    pub fn effective_serial_fraction_from_sample(&self, growth_sample: f64) -> f64 {
        self.s * self.serial_multiplier_from_sample(growth_sample)
    }

    /// Symmetric speedup (paper Eq. 4) from fully precomputed parts:
    /// `threads = n / r`, `perf_r = perf(r)` (NaN when invalid) and
    /// `growth_sample = grow(threads)`.
    #[inline]
    pub fn speedup_symmetric_from_parts(
        &self,
        total_bce: f64,
        r: f64,
        perf_r: f64,
        growth_sample: f64,
    ) -> f64 {
        // Single-divide form of Eq. 4, replicating
        // `ExtendedModel::speedup_symmetric` verbatim: numerator
        // `perf_r · n`, denominator `eff·n + f·r`, one IEEE division.
        let eff = self.effective_serial_fraction_from_sample(growth_sample);
        let speedup = (perf_r * total_bce) / (eff * total_bce + self.f * r);
        if speedup.is_finite() {
            speedup
        } else {
            f64::NAN
        }
    }

    /// Asymmetric speedup (paper Eq. 5) from precomputed parts:
    /// `small_cores = ((n - rl) / r).max(0)`, `perf_r = perf(r)`,
    /// `perf_l = perf(rl)` (NaN when invalid) and the growth sample at
    /// `small_cores + 1` threads.
    #[inline]
    pub fn speedup_asymmetric_from_parts(
        &self,
        small_cores: f64,
        perf_r: f64,
        perf_l: f64,
        growth_sample: f64,
    ) -> f64 {
        // Single-divide form of Eq. 5, replicating
        // `ExtendedModel::speedup_asymmetric` verbatim.
        let eff = self.effective_serial_fraction_from_sample(growth_sample);
        let parallel_throughput = perf_r * small_cores + perf_l;
        let speedup =
            (perf_l * parallel_throughput) / (eff * parallel_throughput + self.f * perf_l);
        if speedup.is_finite() {
            speedup
        } else {
            f64::NAN
        }
    }

    /// Symmetric speedup of `r`-BCE cores under a `total_bce` budget, deriving
    /// every part on the spot. `NaN` wherever the owned
    /// `ExtendedModel::speedup_symmetric` path returns an error (non-positive
    /// or over-budget `r`, invalid perf, non-finite result).
    pub fn speedup_symmetric(&self, total_bce: f64, r: f64) -> f64 {
        if !(r.is_finite() && r > 0.0) || r > total_bce {
            return f64::NAN;
        }
        let threads = total_bce / r;
        self.speedup_symmetric_from_parts(
            total_bce,
            r,
            self.perf_or_nan(r),
            self.growth.eval(threads),
        )
    }

    /// Asymmetric speedup of one `rl`-BCE core plus `r`-BCE cores under a
    /// `total_bce` budget. `NaN` wherever the owned
    /// `ExtendedModel::speedup_asymmetric` path returns an error (geometry
    /// that `AsymmetricDesign::new` rejects, invalid perf, non-finite result).
    pub fn speedup_asymmetric(&self, total_bce: f64, r: f64, rl: f64) -> f64 {
        if !(r.is_finite() && r > 0.0 && rl.is_finite() && rl > 0.0) || rl > total_bce {
            return f64::NAN;
        }
        if rl + r > total_bce && (rl - total_bce).abs() > f64::EPSILON {
            return f64::NAN;
        }
        if rl < r {
            return f64::NAN;
        }
        let small_cores = ((total_bce - rl) / r).max(0.0);
        let threads = small_cores + 1.0;
        self.speedup_asymmetric_from_parts(
            small_cores,
            self.perf_or_nan(r),
            self.perf_or_nan(rl),
            self.growth.eval(threads),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{AsymmetricDesign, ChipBudget, SymmetricDesign};
    use crate::extended::ExtendedModel;

    fn owned_symmetric(model: &ExtendedModel, n: f64, r: f64) -> f64 {
        SymmetricDesign::new(ChipBudget::new(n), r)
            .ok()
            .and_then(|d| model.speedup_symmetric(&d).ok())
            .unwrap_or(f64::NAN)
    }

    fn owned_asymmetric(model: &ExtendedModel, n: f64, r: f64, rl: f64) -> f64 {
        AsymmetricDesign::new(ChipBudget::new(n), r, rl)
            .ok()
            .and_then(|d| model.speedup_asymmetric(&d).ok())
            .unwrap_or(f64::NAN)
    }

    fn growth_catalogue() -> Vec<GrowthFunction> {
        vec![
            GrowthFunction::Constant,
            GrowthFunction::Linear,
            GrowthFunction::Logarithmic,
            GrowthFunction::Superlinear(1.55),
            GrowthFunction::Measured(vec![(1.0, 0.0), (4.0, 2.5), (16.0, 30.0)]),
        ]
    }

    #[test]
    fn symmetric_matches_owned_model_bitwise() {
        for app in AppParams::table2_all() {
            for growth in growth_catalogue() {
                for perf in [PerfModel::Pollack, PerfModel::Power(0.75), PerfModel::Linear] {
                    let owned = ExtendedModel::new(app.clone(), growth.clone(), perf);
                    let prepared = PreparedModel::new(&app, &growth, perf);
                    for n in [64.0, 256.0] {
                        for r in [0.5, 1.0, 3.7, 16.0, 255.0, 256.0, 300.0] {
                            let a = owned_symmetric(&owned, n, r);
                            let b = prepared.speedup_symmetric(n, r);
                            assert_eq!(
                                a.to_bits(),
                                b.to_bits(),
                                "{} {growth:?} {perf:?} n={n} r={r}: {a} vs {b}",
                                app.name
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn asymmetric_matches_owned_model_bitwise() {
        let app = AppParams::table2_hop();
        for growth in growth_catalogue() {
            let owned = ExtendedModel::new(app.clone(), growth.clone(), PerfModel::Pollack);
            let prepared = PreparedModel::new(&app, &growth, PerfModel::Pollack);
            for (r, rl) in [
                (1.0, 4.0),
                (4.0, 64.0),
                (1.0, 256.0),
                (1.0, 255.5), // no room for a small core → error/NaN
                (16.0, 4.0),  // large smaller than small → error/NaN
                (1.0, 300.0), // over budget → error/NaN
                (2.5, 17.3),
            ] {
                let a = owned_asymmetric(&owned, 256.0, r, rl);
                let b = prepared.speedup_asymmetric(256.0, r, rl);
                assert_eq!(a.to_bits(), b.to_bits(), "{growth:?} r={r} rl={rl}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn invalid_perf_collapses_to_nan_like_the_owned_path() {
        // A logarithmic perf model that goes non-positive for small r: the
        // owned path errors, the prepared path must produce NaN.
        let app = AppParams::table2_kmeans();
        let growth = GrowthFunction::Linear;
        let perf = PerfModel::Logarithmic(-2.0);
        let owned = ExtendedModel::new(app.clone(), growth.clone(), perf);
        let prepared = PreparedModel::new(&app, &growth, perf);
        for r in [1.5, 2.0, 4.0] {
            let a = owned_symmetric(&owned, 256.0, r);
            let b = prepared.speedup_symmetric(256.0, r);
            assert_eq!(a.to_bits(), b.to_bits(), "r={r}");
        }
    }

    #[test]
    fn parts_path_agrees_with_direct_path() {
        let app = AppParams::table2_fuzzy();
        let growth = GrowthFunction::Superlinear(1.3);
        let prepared = PreparedModel::new(&app, &growth, PerfModel::Pollack);
        let n = 256.0;
        for r in [1.0, 4.0, 37.0] {
            let threads = n / r;
            let via_parts = prepared.speedup_symmetric_from_parts(
                n,
                r,
                prepared.perf_or_nan(r),
                prepared.growth_sample(threads),
            );
            assert_eq!(via_parts.to_bits(), prepared.speedup_symmetric(n, r).to_bits());
        }
    }
}
