//! Growth functions for the reduction overhead (`grow()` in paper Eq. 4/5).
//!
//! The paper's key observation is that the work in the merging phase is not
//! constant: with `p` threads there are `p` partial results to merge, so the
//! reduction time grows with the thread count. The *shape* of the growth
//! depends on how the merge is implemented:
//!
//! * serial accumulation over all partials → **linear** growth,
//! * pairwise tree combination → **logarithmic** growth,
//! * privatised parallel merge → **constant** computation (growth comes only
//!   from communication; see [`crate::comm`]),
//! * hop's merging phase, dominated by memory accesses, grows **super-linearly**
//!   in the paper's measurements.
//!
//! By construction every growth function satisfies `grow(1) = 0`, so the
//! single-thread execution is the baseline and the overhead is purely the extra
//! work caused by scaling.

use serde::{Deserialize, Serialize};

/// Growth of the reduction *overhead* as a function of the number of threads
/// participating in the merging phase.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum GrowthFunction {
    /// No growth: the merging phase costs the same regardless of thread count.
    /// This degenerates the extended model to plain Amdahl/Hill–Marty.
    Constant,
    /// Linear growth, `grow(p) = p - 1`: a serial loop over per-thread partial
    /// results (the kmeans merging loop of paper Algorithm 1).
    #[default]
    Linear,
    /// Logarithmic growth, `grow(p) = log2(p)`: a balanced combining tree.
    Logarithmic,
    /// Super-linear growth, `grow(p) = (p - 1)^exponent` with `exponent >= 1`:
    /// the paper observes this for hop, attributing it to memory accesses in the
    /// merging phase (Section V-A, `fored = 155 %`).
    Superlinear(
        /// Exponent of the super-linear growth (1.0 reduces to `Linear`).
        f64,
    ),
    /// Piecewise-linear interpolation over measured `(threads, growth)` points.
    /// Used when the growth has been measured empirically (e.g. extracted from
    /// the simulator) rather than assumed. Points must be sorted by thread
    /// count; queries outside the range are clamped/extrapolated linearly from
    /// the last segment.
    Measured(
        /// Measured `(threads, grow(threads))` samples, sorted by thread count.
        Vec<(f64, f64)>,
    ),
}

impl GrowthFunction {
    /// Evaluate the growth at `threads` participating threads.
    ///
    /// `threads` may be fractional because the analytical designs allow
    /// non-integer core counts (e.g. 256 BCE / 6 BCE cores); the growth
    /// functions are smooth in that argument. Thread counts below one are
    /// clamped to one (no overhead).
    pub fn eval(&self, threads: f64) -> f64 {
        let p = threads.max(1.0);
        match self {
            GrowthFunction::Constant => 0.0,
            GrowthFunction::Linear => p - 1.0,
            GrowthFunction::Logarithmic => p.log2(),
            GrowthFunction::Superlinear(exp) => (p - 1.0).powf(*exp),
            GrowthFunction::Measured(points) => interpolate(points, p),
        }
    }

    /// Evaluate the growth at an integer thread count.
    pub fn eval_threads(&self, threads: usize) -> f64 {
        self.eval(threads as f64)
    }

    /// A short, human-readable name for reports and plot legends.
    pub fn name(&self) -> &'static str {
        match self {
            GrowthFunction::Constant => "constant",
            GrowthFunction::Linear => "linear",
            GrowthFunction::Logarithmic => "log",
            GrowthFunction::Superlinear(_) => "superlinear",
            GrowthFunction::Measured(_) => "measured",
        }
    }

    /// Like [`GrowthFunction::name`], but parameterised variants carry their
    /// parameters, so distinct growth functions always label distinctly:
    /// `"superlinear(1.55)"`, and for measured curves the point count plus a
    /// short content fingerprint, e.g. `"measured(4pts#1a2b3c4d)"`.
    pub fn label(&self) -> String {
        match self {
            GrowthFunction::Superlinear(exp) => format!("superlinear({exp})"),
            GrowthFunction::Measured(points) => {
                // Labels end up in persisted exports (sweep CSV/JSON), so the
                // fingerprint must be stable across toolchains — hence the
                // workspace [`crate::fingerprint::Fnv64`], not std's hasher.
                let mut hasher = crate::fingerprint::Fnv64::new();
                for (x, y) in points {
                    hasher.write_f64(*x);
                    hasher.write_f64(*y);
                }
                format!("measured({}pts#{:08x})", points.len(), hasher.finish() as u32)
            }
            other => other.name().to_string(),
        }
    }
}

/// Piecewise-linear interpolation with linear extrapolation beyond the last
/// sample and clamping before the first one.
fn interpolate(points: &[(f64, f64)], x: f64) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    if points.len() == 1 || x <= points[0].0 {
        return points[0].1;
    }
    for w in points.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if x <= x1 {
            if (x1 - x0).abs() < f64::EPSILON {
                return y1;
            }
            return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
        }
    }
    // Extrapolate from the last segment.
    let (x0, y0) = points[points.len() - 2];
    let (x1, y1) = points[points.len() - 1];
    if (x1 - x0).abs() < f64::EPSILON {
        y1
    } else {
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_has_no_overhead() {
        for g in [
            GrowthFunction::Constant,
            GrowthFunction::Linear,
            GrowthFunction::Logarithmic,
            GrowthFunction::Superlinear(1.4),
        ] {
            assert_eq!(g.eval(1.0), 0.0, "{g:?}");
        }
    }

    #[test]
    fn linear_growth_counts_extra_partials() {
        let g = GrowthFunction::Linear;
        assert_eq!(g.eval(2.0), 1.0);
        assert_eq!(g.eval(16.0), 15.0);
        assert_eq!(g.eval_threads(256), 255.0);
    }

    #[test]
    fn log_growth_matches_tree_depth() {
        let g = GrowthFunction::Logarithmic;
        assert!((g.eval(2.0) - 1.0).abs() < 1e-12);
        assert!((g.eval(16.0) - 4.0).abs() < 1e-12);
        assert!((g.eval(256.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn superlinear_exponent_one_is_linear() {
        let a = GrowthFunction::Superlinear(1.0);
        let b = GrowthFunction::Linear;
        for p in [1.0, 2.0, 7.0, 64.0] {
            assert!((a.eval(p) - b.eval(p)).abs() < 1e-12);
        }
    }

    #[test]
    fn superlinear_grows_faster_than_linear() {
        let a = GrowthFunction::Superlinear(1.3);
        let b = GrowthFunction::Linear;
        for p in [4.0, 16.0, 64.0, 256.0] {
            assert!(a.eval(p) > b.eval(p));
        }
    }

    #[test]
    fn growth_is_monotone_nondecreasing() {
        for g in [
            GrowthFunction::Constant,
            GrowthFunction::Linear,
            GrowthFunction::Logarithmic,
            GrowthFunction::Superlinear(1.55),
        ] {
            let mut prev = -1.0;
            for p in 1..=256 {
                let v = g.eval(p as f64);
                assert!(v >= prev, "{g:?} decreased at p={p}");
                prev = v;
            }
        }
    }

    #[test]
    fn sub_one_thread_counts_clamp() {
        assert_eq!(GrowthFunction::Linear.eval(0.5), 0.0);
        assert_eq!(GrowthFunction::Logarithmic.eval(0.0), 0.0);
    }

    #[test]
    fn measured_interpolates_between_points() {
        let g = GrowthFunction::Measured(vec![(1.0, 0.0), (4.0, 3.0), (8.0, 9.0)]);
        assert_eq!(g.eval(1.0), 0.0);
        assert_eq!(g.eval(4.0), 3.0);
        assert!((g.eval(2.5) - 1.5).abs() < 1e-12);
        assert!((g.eval(6.0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn measured_extrapolates_beyond_last_point() {
        let g = GrowthFunction::Measured(vec![(1.0, 0.0), (2.0, 1.0), (4.0, 3.0)]);
        // Last segment slope is 1 per thread.
        assert!((g.eval(8.0) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn measured_degenerate_inputs() {
        assert_eq!(GrowthFunction::Measured(vec![]).eval(10.0), 0.0);
        assert_eq!(GrowthFunction::Measured(vec![(1.0, 0.5)]).eval(10.0), 0.5);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(GrowthFunction::Linear.name(), "linear");
        assert_eq!(GrowthFunction::Logarithmic.name(), "log");
        assert_eq!(GrowthFunction::Constant.name(), "constant");
    }

    #[test]
    fn default_is_linear() {
        assert_eq!(GrowthFunction::default(), GrowthFunction::Linear);
    }
}
