//! Application parameters: the serial-fraction split of Figure 1/6 and the
//! concrete parameter sets of Tables II, III and IV.
//!
//! The paper characterises an application by:
//!
//! * `f` — the parallel fraction of single-core execution time,
//! * the split of the remaining serial fraction `s = 1 - f` into a constant
//!   part (`fcon`, fraction **of the serial time**) and a reduction part
//!   (`fred`, fraction **of the serial time**, `fcon + fred = 1`),
//! * `fored` — the reduction-overhead coefficient: the relative increase of the
//!   reduction time per unit of the growth function (so at `p` threads the
//!   reduction time is `fred·(1 + fored·grow(p))` of the serial time),
//! * optionally the fraction of time spent in critical sections (measured but
//!   excluded from the model, Section V-A).

use serde::{Deserialize, Serialize};

use crate::error::{check_fraction, ModelError};

/// Split of the serial section into its constant and reduction parts,
/// expressed as fractions of the serial time (paper Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SerialSplit {
    /// Constant serial fraction (of serial time), `fcon`.
    pub fcon: f64,
    /// Reduction fraction (of serial time), `fred = 1 - fcon`.
    pub fred: f64,
}

impl SerialSplit {
    /// Build a split from the constant fraction; the reduction part is the
    /// complement.
    ///
    /// # Errors
    /// Returns an error if `fcon` is not a fraction in `[0, 1]`.
    pub fn from_fcon(fcon: f64) -> Result<Self, ModelError> {
        let fcon = check_fraction("fcon", fcon)?;
        Ok(SerialSplit { fcon, fred: 1.0 - fcon })
    }

    /// Build a split from explicit constant and reduction fractions.
    ///
    /// # Errors
    /// Returns an error if either value is not a fraction or the two do not sum
    /// to one (within `1e-6`).
    pub fn new(fcon: f64, fred: f64) -> Result<Self, ModelError> {
        let fcon = check_fraction("fcon", fcon)?;
        let fred = check_fraction("fred", fred)?;
        let sum = fcon + fred;
        if (sum - 1.0).abs() > 1e-6 {
            return Err(ModelError::FractionSumInvalid { what: "serial split (fcon + fred)", sum });
        }
        Ok(SerialSplit { fcon, fred })
    }
}

/// Full analytical description of an application, in the paper's terms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppParams {
    /// Human-readable name (e.g. `"kmeans"`, `"emb/high-con/low-red"`).
    pub name: String,
    /// Parallel fraction `f` of single-core execution time.
    pub f: f64,
    /// Split of the serial fraction into constant and reduction parts.
    pub split: SerialSplit,
    /// Reduction-overhead coefficient `fored` (relative growth of the reduction
    /// time per unit of the growth function). Values above 1 are legal — the
    /// paper reports `155 %` for hop.
    pub fored: f64,
    /// Fraction of *total* single-core time spent in critical sections.
    /// Reported for completeness (Table II); not used by the model.
    pub critical_section: f64,
}

impl AppParams {
    /// Construct a validated parameter set.
    ///
    /// `fcon` is the constant fraction of the serial time, `fored` the
    /// reduction-overhead coefficient (may exceed 1), `critical_section` the
    /// fraction of total time spent in critical sections.
    ///
    /// # Errors
    /// Returns an error if `f`, `fcon` or `critical_section` are not fractions
    /// or `fored` is negative / non-finite.
    pub fn new(
        name: impl Into<String>,
        f: f64,
        fcon: f64,
        fored: f64,
        critical_section: f64,
    ) -> Result<Self, ModelError> {
        let f = check_fraction("f", f)?;
        let split = SerialSplit::from_fcon(fcon)?;
        if !fored.is_finite() || fored < 0.0 {
            return Err(ModelError::NonPositive { name: "fored", value: fored });
        }
        let critical_section = check_fraction("critical_section", critical_section)?;
        Ok(AppParams { name: name.into(), f, split, fored, critical_section })
    }

    /// The serial fraction `s = 1 - f` of single-core execution time.
    pub fn serial_fraction(&self) -> f64 {
        1.0 - self.f
    }

    /// Constant serial time as a fraction of total single-core time.
    pub fn fcon_abs(&self) -> f64 {
        self.serial_fraction() * self.split.fcon
    }

    /// Single-core reduction time as a fraction of total single-core time.
    pub fn fred_abs(&self) -> f64 {
        self.serial_fraction() * self.split.fred
    }

    /// Rename the parameter set (builder-style), keeping all values.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    // ---------------------------------------------------------------------
    // Table II — measured parameters of the MineBench clustering applications
    // (paper values; the workloads crate re-derives comparable numbers).
    // ---------------------------------------------------------------------

    /// Table II row for `kmeans`: serial 0.015 %, critical 0.004 %,
    /// `fored` 72 %, `fred` 43 %, `fcon` 57 %, `f` 0.99985.
    pub fn table2_kmeans() -> Self {
        AppParams::new("kmeans", 0.99985, 0.57, 0.72, 0.00004).expect("valid Table II row")
    }

    /// Table II row for `fuzzy`: serial 0.002 %, critical 0 %,
    /// `fored` 82 %, `fred` 35 %, `fcon` 65 %, `f` 0.99998.
    pub fn table2_fuzzy() -> Self {
        AppParams::new("fuzzy", 0.99998, 0.65, 0.82, 0.0).expect("valid Table II row")
    }

    /// Table II row for `hop`: serial 0.1 %, critical 0.0003 %,
    /// `fored` 155 %, `fred` 12 %, `fcon` 88 %, `f` 0.999.
    pub fn table2_hop() -> Self {
        AppParams::new("hop", 0.999, 0.88, 1.55, 0.000003).expect("valid Table II row")
    }

    /// All three Table II rows, in paper order.
    pub fn table2_all() -> Vec<Self> {
        vec![Self::table2_kmeans(), Self::table2_fuzzy(), Self::table2_hop()]
    }

    /// The paper's full application catalogue: the eight synthetic Table III
    /// classes followed by the three measured Table II applications. This is
    /// the application axis of the large design-space sweeps (`repro dse`,
    /// the benches and the examples), defined once so they all explore the
    /// same space.
    pub fn paper_catalog() -> Vec<Self> {
        let mut apps: Vec<AppParams> = AppClass::table3_all().iter().map(|c| c.params()).collect();
        apps.extend(Self::table2_all());
        apps
    }
}

/// One of the eight synthetic application classes of Table III, defined along
/// three dimensions: parallelism, constant fraction and reduction overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppClass {
    /// Embarrassingly parallel (`f = 0.999`) vs. non-embarrassingly parallel
    /// (`f = 0.99`).
    pub embarrassingly_parallel: bool,
    /// High constant fraction (`fcon = 90 %`) vs. moderate (`fcon = 60 %`).
    pub high_constant: bool,
    /// High reduction overhead (`fored = 80 %`) vs. low (`fored = 10 %`).
    pub high_reduction_overhead: bool,
}

impl AppClass {
    /// Parallel fraction for this class.
    pub fn f(&self) -> f64 {
        if self.embarrassingly_parallel {
            0.999
        } else {
            0.99
        }
    }

    /// Constant fraction of the serial time for this class.
    pub fn fcon(&self) -> f64 {
        if self.high_constant {
            0.9
        } else {
            0.6
        }
    }

    /// Reduction-overhead coefficient for this class.
    pub fn fored(&self) -> f64 {
        if self.high_reduction_overhead {
            0.8
        } else {
            0.1
        }
    }

    /// A descriptive name, e.g. `"emb/high-con/low-ovh"`.
    pub fn name(&self) -> String {
        format!(
            "{}/{}-con/{}-ovh",
            if self.embarrassingly_parallel { "emb" } else { "non-emb" },
            if self.high_constant { "high" } else { "mod" },
            if self.high_reduction_overhead { "high" } else { "low" },
        )
    }

    /// Convert the class to a concrete [`AppParams`] set.
    pub fn params(&self) -> AppParams {
        AppParams::new(self.name(), self.f(), self.fcon(), self.fored(), 0.0)
            .expect("Table III classes are always valid")
    }

    /// All eight classes, in the row order of Table III.
    pub fn table3_all() -> Vec<AppClass> {
        let mut rows = Vec::with_capacity(8);
        for &high_reduction_overhead in &[false, true] {
            for &high_constant in &[true, false] {
                for &embarrassingly_parallel in &[true, false] {
                    rows.push(AppClass {
                        embarrassingly_parallel,
                        high_constant,
                        high_reduction_overhead,
                    });
                }
            }
        }
        rows
    }
}

/// A Table IV data-set variant: attribute sizes plus the measured fractions the
/// paper reports for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetVariant {
    /// Label used in Table IV, e.g. `"kmeans-base"`.
    pub label: String,
    /// Which application the variant belongs to (`"kmeans"`, `"fuzzy"`, `"hop"`).
    pub application: String,
    /// Number of points `N` (for hop: particle count).
    pub points: usize,
    /// Number of dimensions `D` (0 where not applicable).
    pub dims: usize,
    /// Number of cluster centers `C` (0 where not applicable).
    pub centers: usize,
    /// Paper-reported parallel fraction `f`.
    pub f: f64,
    /// Paper-reported reduction fraction of serial time, `fred`.
    pub fred: f64,
    /// Paper-reported constant fraction of serial time, `fcon`.
    pub fcon: f64,
}

impl DatasetVariant {
    #[allow(clippy::too_many_arguments)]
    fn row(
        label: &str,
        application: &str,
        points: usize,
        dims: usize,
        centers: usize,
        f: f64,
        fred: f64,
        fcon: f64,
    ) -> Self {
        DatasetVariant {
            label: label.to_string(),
            application: application.to_string(),
            points,
            dims,
            centers,
            f,
            fred,
            fcon,
        }
    }

    /// All Table IV rows, in paper order.
    pub fn table4_all() -> Vec<Self> {
        vec![
            Self::row("kmeans-base", "kmeans", 17695, 9, 8, 0.99985, 0.43, 0.57),
            Self::row("kmeans-dim", "kmeans", 17695, 18, 8, 0.99984, 0.41, 0.59),
            Self::row("kmeans-point", "kmeans", 35390, 18, 8, 0.99992, 0.49, 0.51),
            Self::row("kmeans-center", "kmeans", 17695, 18, 32, 0.99984, 0.41, 0.59),
            Self::row("fuzzy-base", "fuzzy", 17695, 9, 8, 0.99998, 0.65, 0.35),
            Self::row("fuzzy-dim", "fuzzy", 17695, 18, 8, 0.99997, 0.61, 0.39),
            Self::row("fuzzy-point", "fuzzy", 35390, 18, 8, 0.99999, 0.59, 0.41),
            Self::row("fuzzy-center", "fuzzy", 17695, 18, 32, 0.99998, 0.61, 0.39),
            Self::row("hop-default", "hop", 61440, 3, 0, 0.9990, 0.12, 0.88),
            Self::row("hop-med", "hop", 491520, 3, 0, 0.9980, 0.15, 0.85),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_split_complements() {
        let s = SerialSplit::from_fcon(0.57).unwrap();
        assert!((s.fcon + s.fred - 1.0).abs() < 1e-12);
        assert!((s.fred - 0.43).abs() < 1e-12);
    }

    #[test]
    fn serial_split_rejects_inconsistent_pairs() {
        assert!(SerialSplit::new(0.6, 0.3).is_err());
        assert!(SerialSplit::new(0.6, 0.4).is_ok());
        assert!(SerialSplit::new(1.2, -0.2).is_err());
    }

    #[test]
    fn table2_rows_match_paper() {
        let k = AppParams::table2_kmeans();
        assert!((k.f - 0.99985).abs() < 1e-12);
        assert!((k.split.fcon - 0.57).abs() < 1e-12);
        assert!((k.split.fred - 0.43).abs() < 1e-12);
        assert!((k.fored - 0.72).abs() < 1e-12);

        let h = AppParams::table2_hop();
        assert!((h.serial_fraction() - 0.001).abs() < 1e-12);
        assert!(h.fored > 1.0, "hop has super-unity overhead coefficient");
    }

    #[test]
    fn absolute_fractions_scale_with_serial_fraction() {
        let k = AppParams::table2_kmeans();
        let s = k.serial_fraction();
        assert!((k.fcon_abs() - s * 0.57).abs() < 1e-15);
        assert!((k.fred_abs() - s * 0.43).abs() < 1e-15);
        assert!((k.fcon_abs() + k.fred_abs() - s).abs() < 1e-15);
    }

    #[test]
    fn app_params_rejects_bad_values() {
        assert!(AppParams::new("x", 1.5, 0.5, 0.1, 0.0).is_err());
        assert!(AppParams::new("x", 0.9, 1.5, 0.1, 0.0).is_err());
        assert!(AppParams::new("x", 0.9, 0.5, -0.1, 0.0).is_err());
        assert!(AppParams::new("x", 0.9, 0.5, 0.1, 2.0).is_err());
        assert!(AppParams::new("x", 0.9, 0.5, 0.1, 0.0).is_ok());
    }

    #[test]
    fn fored_above_one_is_allowed() {
        // hop's measured coefficient is 1.55.
        let p = AppParams::new("hop-like", 0.999, 0.88, 1.55, 0.0).unwrap();
        assert!((p.fored - 1.55).abs() < 1e-12);
    }

    #[test]
    fn table3_has_eight_distinct_classes() {
        let all = AppClass::table3_all();
        assert_eq!(all.len(), 8);
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
    }

    #[test]
    fn table3_values_match_paper() {
        let c = AppClass {
            embarrassingly_parallel: true,
            high_constant: true,
            high_reduction_overhead: false,
        };
        assert_eq!(c.f(), 0.999);
        assert_eq!(c.fcon(), 0.9);
        assert_eq!(c.fored(), 0.1);
        let p = c.params();
        assert_eq!(p.f, 0.999);
        assert!((p.split.fred - 0.1).abs() < 1e-12);
    }

    #[test]
    fn table4_has_ten_rows_with_consistent_splits() {
        let rows = DatasetVariant::table4_all();
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!((r.fred + r.fcon - 1.0).abs() < 1e-9, "{}", r.label);
            assert!(r.f > 0.99 && r.f < 1.0, "{}", r.label);
        }
    }

    #[test]
    fn table4_point_scaling_increases_parallel_fraction() {
        let rows = DatasetVariant::table4_all();
        let base = rows.iter().find(|r| r.label == "kmeans-dim").unwrap();
        let point = rows.iter().find(|r| r.label == "kmeans-point").unwrap();
        assert!(point.f > base.f);
    }

    #[test]
    fn with_name_keeps_values() {
        let p = AppParams::table2_kmeans().with_name("renamed");
        assert_eq!(p.name, "renamed");
        assert!((p.f - 0.99985).abs() < 1e-12);
    }

    #[test]
    fn params_serialize_roundtrip() {
        let p = AppParams::table2_fuzzy();
        let json = serde_json::to_string(&p).unwrap();
        let back: AppParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
