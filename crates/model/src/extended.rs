//! The paper's extended speedup model (Eq. 4 and Eq. 5): Amdahl/Hill–Marty
//! with a serial fraction that grows with the core count because of the
//! merging (reduction) phase.
//!
//! The serial time at `p` merging threads, relative to the single-core serial
//! time, is
//!
//! ```text
//! serial_multiplier(p) = fcon + fred·(1 + fored·grow(p))
//! ```
//!
//! with `fcon + fred = 1`, so `serial_multiplier(1) = 1`: the single-core
//! execution is unchanged and everything above 1 is overhead introduced by
//! scaling. The speedup expressions then substitute
//! `s·serial_multiplier(p)` for the constant serial fraction of Eq. 2/3.

use serde::{Deserialize, Serialize};

use crate::chip::{AsymmetricDesign, SymmetricDesign};
use crate::error::{check_finite, ModelError};
use crate::growth::GrowthFunction;
use crate::params::AppParams;
use crate::perf::PerfModel;

/// The extended speedup model of paper Section III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtendedModel {
    params: AppParams,
    growth: GrowthFunction,
    perf: PerfModel,
}

impl ExtendedModel {
    /// Build a model from application parameters, a reduction-overhead growth
    /// function and a core performance model.
    pub fn new(params: AppParams, growth: GrowthFunction, perf: PerfModel) -> Self {
        ExtendedModel { params, growth, perf }
    }

    /// The application parameters the model was built from.
    pub fn params(&self) -> &AppParams {
        &self.params
    }

    /// The growth function used for the reduction overhead.
    pub fn growth(&self) -> &GrowthFunction {
        &self.growth
    }

    /// The core performance model.
    pub fn perf(&self) -> &PerfModel {
        &self.perf
    }

    /// Replace the growth function (builder-style).
    pub fn with_growth(mut self, growth: GrowthFunction) -> Self {
        self.growth = growth;
        self
    }

    /// Replace the performance model (builder-style).
    pub fn with_perf(mut self, perf: PerfModel) -> Self {
        self.perf = perf;
        self
    }

    /// Serial-section time at `threads` merging threads, normalised to the
    /// single-core serial-section time (the quantity plotted in Figure 2(b)).
    pub fn serial_multiplier(&self, threads: f64) -> f64 {
        let split = self.params.split;
        split.fcon + split.fred * (1.0 + self.params.fored * self.growth.eval(threads))
    }

    /// Effective serial fraction (of total single-core time) at `threads`
    /// merging threads: `s · serial_multiplier(threads)`.
    pub fn effective_serial_fraction(&self, threads: f64) -> f64 {
        self.params.serial_fraction() * self.serial_multiplier(threads)
    }

    /// Speedup of a symmetric CMP (paper Eq. 4).
    ///
    /// The serial section (including the grown reduction) runs on one core of
    /// `r` BCE at `perf(r)`; the parallel section runs on all `n/r` cores.
    ///
    /// # Errors
    /// Propagates performance-model validation errors.
    pub fn speedup_symmetric(&self, design: &SymmetricDesign) -> Result<f64, ModelError> {
        let r = design.r();
        let n = design.budget().total_bce();
        let perf_r = self.perf.perf(r)?;
        let threads = design.threads();
        // Single-divide form of `1 / (eff/perf_r + f·r/(perf_r·n))`
        // (multiply through by `perf_r·n`): algebraically identical, one
        // IEEE division instead of three. This is the evaluation hot path's
        // arithmetic — [`PreparedModel`] and the SIMD lane kernels replicate
        // this exact operation order, so any change here must be mirrored
        // there (and the golden curves regenerated).
        //
        // [`PreparedModel`]: crate::prepared::PreparedModel
        let eff = self.effective_serial_fraction(threads);
        check_finite("extended symmetric speedup", (perf_r * n) / (eff * n + self.params.f * r))
    }

    /// Speedup of an asymmetric CMP (paper Eq. 5).
    ///
    /// The serial section (including the grown reduction) runs on the large
    /// core of `rl` BCE; the parallel section is executed by the small cores
    /// plus the large core (`perf(r)·(n-rl)/r + perf(rl)`). The number of
    /// merging threads is the total number of cores.
    ///
    /// # Errors
    /// Propagates performance-model validation errors.
    pub fn speedup_asymmetric(&self, design: &AsymmetricDesign) -> Result<f64, ModelError> {
        let perf_l = self.perf.perf(design.rl())?;
        let perf_r = self.perf.perf(design.r())?;
        let threads = design.threads();
        // Single-divide form of `1 / (eff/perf_l + f/pt)` (multiply through
        // by `perf_l·pt`); mirrored by `PreparedModel` and the lane kernels.
        let eff = self.effective_serial_fraction(threads);
        let parallel_throughput = perf_r * design.small_cores() + perf_l;
        check_finite(
            "extended asymmetric speedup",
            (perf_l * parallel_throughput) / (eff * parallel_throughput + self.params.f * perf_l),
        )
    }

    /// Speedup on `p` identical unit cores (the Figure 3 setting: the baseline
    /// core of Table I with performance 1, scaled out to `p` cores).
    ///
    /// This is Eq. 4 with `r = 1`, `n = p`.
    ///
    /// # Errors
    /// Returns an error if `p` is not strictly positive.
    pub fn speedup_unit_cores(&self, p: f64) -> Result<f64, ModelError> {
        if !(p.is_finite() && p > 0.0) {
            return Err(ModelError::NonPositive { name: "p", value: p });
        }
        // Single-divide form of `1 / (eff + f/p)` (multiply through by `p`).
        let eff = self.effective_serial_fraction(p);
        check_finite("extended unit-core speedup", p / (eff * p + self.params.f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::ChipBudget;
    use crate::hill_marty;
    use crate::params::AppClass;

    fn budget() -> ChipBudget {
        ChipBudget::paper_default()
    }

    fn class(emb: bool, high_con: bool, high_ovh: bool) -> AppParams {
        AppClass {
            embarrassingly_parallel: emb,
            high_constant: high_con,
            high_reduction_overhead: high_ovh,
        }
        .params()
    }

    fn model(params: AppParams, growth: GrowthFunction) -> ExtendedModel {
        ExtendedModel::new(params, growth, PerfModel::Pollack)
    }

    #[test]
    fn single_thread_multiplier_is_one() {
        for p in AppParams::table2_all() {
            let m = model(p, GrowthFunction::Linear);
            assert!((m.serial_multiplier(1.0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn multiplier_matches_table2_hand_computation() {
        // kmeans at 16 threads: 0.57 + 0.43·(1 + 0.72·15) = 5.644
        let m = model(AppParams::table2_kmeans(), GrowthFunction::Linear);
        assert!((m.serial_multiplier(16.0) - 5.644).abs() < 1e-4);
    }

    #[test]
    fn zero_overhead_reduces_to_hill_marty() {
        let params = AppParams::new("no-ovh", 0.99, 0.6, 0.0, 0.0).unwrap();
        let m = model(params.clone(), GrowthFunction::Linear);
        for r in [1.0, 4.0, 32.0] {
            let d = SymmetricDesign::new(budget(), r).unwrap();
            let ext = m.speedup_symmetric(&d).unwrap();
            let hm = hill_marty::symmetric_speedup(0.99, &d, &PerfModel::Pollack).unwrap();
            assert!((ext - hm).abs() < 1e-9, "r={r}");
        }
    }

    #[test]
    fn constant_growth_reduces_to_hill_marty() {
        let m = model(AppParams::table2_kmeans(), GrowthFunction::Constant);
        let d = SymmetricDesign::new(budget(), 1.0).unwrap();
        let ext = m.speedup_symmetric(&d).unwrap();
        let hm = hill_marty::symmetric_speedup(0.99985, &d, &PerfModel::Pollack).unwrap();
        assert!((ext - hm).abs() < 1e-9);
    }

    #[test]
    fn figure4c_peak_matches_paper() {
        // Fig. 4(c): f = 0.999, moderate constant, low overhead, Linear.
        // Paper: maximum speedup 104.5 at r = 4.
        let m = model(class(true, false, false), GrowthFunction::Linear);
        let d = SymmetricDesign::new(budget(), 4.0).unwrap();
        let s = m.speedup_symmetric(&d).unwrap();
        assert!((s - 104.5).abs() < 1.0, "got {s}");

        // And r = 4 is the best power-of-two choice.
        let best = budget()
            .power_of_two_core_sizes()
            .into_iter()
            .max_by(|&a, &b| {
                let sa = m.speedup_symmetric(&SymmetricDesign::new(budget(), a).unwrap()).unwrap();
                let sb = m.speedup_symmetric(&SymmetricDesign::new(budget(), b).unwrap()).unwrap();
                sa.partial_cmp(&sb).unwrap()
            })
            .unwrap();
        assert_eq!(best, 4.0);
    }

    #[test]
    fn figure4d_peak_matches_paper() {
        // Fig. 4(d): f = 0.999, moderate constant, high overhead, Linear.
        // Paper: maximum speedup 67.1 at r = 8.
        let m = model(class(true, false, true), GrowthFunction::Linear);
        let d = SymmetricDesign::new(budget(), 8.0).unwrap();
        let s = m.speedup_symmetric(&d).unwrap();
        assert!((s - 67.1).abs() < 1.0, "got {s}");
    }

    #[test]
    fn figure4d_nonemb_linear_peak_matches_paper() {
        // Fig. 4(d), f = 0.99 Linear: maximum speedup 36.2 at r = 32.
        let m = model(class(false, false, true), GrowthFunction::Linear);
        let d = SymmetricDesign::new(budget(), 32.0).unwrap();
        let s = m.speedup_symmetric(&d).unwrap();
        assert!((s - 36.2).abs() < 1.0, "got {s}");
    }

    #[test]
    fn figure4b_peak_matches_paper() {
        // Fig. 4(b): f = 0.99, high constant, high overhead, Linear → 47.6.
        let m = model(class(false, true, true), GrowthFunction::Linear);
        let best = budget()
            .power_of_two_core_sizes()
            .into_iter()
            .map(|r| m.speedup_symmetric(&SymmetricDesign::new(budget(), r).unwrap()).unwrap())
            .fold(f64::MIN, f64::max);
        assert!((best - 47.6).abs() < 1.0, "got {best}");
    }

    #[test]
    fn figure5h_r4_peak_matches_paper() {
        // Fig. 5(h): f = 0.99, moderate constant, high overhead, r = 4 → 43.3.
        let m = model(class(false, false, true), GrowthFunction::Linear);
        let best = budget()
            .power_of_two_core_sizes()
            .into_iter()
            .filter(|&rl| (4.0..256.0).contains(&rl))
            .map(|rl| {
                m.speedup_asymmetric(&AsymmetricDesign::new(budget(), 4.0, rl).unwrap()).unwrap()
            })
            .fold(f64::MIN, f64::max);
        assert!((best - 43.3).abs() < 1.0, "got {best}");
    }

    #[test]
    fn figure5h_r1_peak_matches_paper() {
        // Fig. 5(h): r = 1 small cores → peak 22.6 (worse than symmetric 36.2).
        let m = model(class(false, false, true), GrowthFunction::Linear);
        let best = budget()
            .power_of_two_core_sizes()
            .into_iter()
            .filter(|&rl| rl < 256.0)
            .map(|rl| {
                m.speedup_asymmetric(&AsymmetricDesign::new(budget(), 1.0, rl).unwrap()).unwrap()
            })
            .fold(f64::MIN, f64::max);
        assert!((best - 22.6).abs() < 1.0, "got {best}");
    }

    #[test]
    fn figure5d_r4_peak_matches_paper() {
        // Fig. 5(d): f = 0.99, high constant, high overhead → ACMP best 64.2.
        let m = model(class(false, true, true), GrowthFunction::Linear);
        let best = budget()
            .power_of_two_core_sizes()
            .into_iter()
            .filter(|&rl| (4.0..256.0).contains(&rl))
            .map(|rl| {
                m.speedup_asymmetric(&AsymmetricDesign::new(budget(), 4.0, rl).unwrap()).unwrap()
            })
            .fold(f64::MIN, f64::max);
        assert!((best - 64.2).abs() < 1.5, "got {best}");
    }

    #[test]
    fn high_overhead_shifts_optimum_to_larger_cores() {
        // Paper Section V-D-1: moving from low to high reduction overhead moves
        // the symmetric optimum to larger r and lowers the peak.
        let perf = PerfModel::Pollack;
        let best = |params: AppParams| -> (f64, f64) {
            let m = ExtendedModel::new(params, GrowthFunction::Linear, perf);
            budget()
                .power_of_two_core_sizes()
                .into_iter()
                .map(|r| {
                    (r, m.speedup_symmetric(&SymmetricDesign::new(budget(), r).unwrap()).unwrap())
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap()
        };
        let (r_low, s_low) = best(class(true, false, false));
        let (r_high, s_high) = best(class(true, false, true));
        assert!(r_high > r_low);
        assert!(s_high < s_low);
    }

    #[test]
    fn log_growth_keeps_small_cores_for_embarrassingly_parallel() {
        // Paper Section V-D-1: with logarithmic growth, embarrassingly parallel
        // applications still prefer small cores.
        let m = model(class(true, true, false), GrowthFunction::Logarithmic);
        let best_r = budget()
            .power_of_two_core_sizes()
            .into_iter()
            .max_by(|&a, &b| {
                let sa = m.speedup_symmetric(&SymmetricDesign::new(budget(), a).unwrap()).unwrap();
                let sb = m.speedup_symmetric(&SymmetricDesign::new(budget(), b).unwrap()).unwrap();
                sa.partial_cmp(&sb).unwrap()
            })
            .unwrap();
        assert_eq!(best_r, 1.0);
    }

    #[test]
    fn extended_never_exceeds_hill_marty() {
        for params in AppParams::table2_all() {
            let f = params.f;
            let m = model(params, GrowthFunction::Linear);
            for r in budget().power_of_two_core_sizes() {
                let d = SymmetricDesign::new(budget(), r).unwrap();
                let ext = m.speedup_symmetric(&d).unwrap();
                let hm = hill_marty::symmetric_speedup(f, &d, &PerfModel::Pollack).unwrap();
                assert!(ext <= hm + 1e-9, "r={r}");
            }
        }
    }

    #[test]
    fn unit_core_speedup_tapers_under_linear_growth() {
        // Figure 3's qualitative shape: the extended model peaks well below the
        // Amdahl curve at 256 cores.
        let m = model(AppParams::table2_kmeans(), GrowthFunction::Linear);
        let ext256 = m.speedup_unit_cores(256.0).unwrap();
        let amdahl256 = crate::amdahl::amdahl_speedup(0.99985, 256.0).unwrap();
        assert!(ext256 < amdahl256);
        // And speedup is no longer monotone: somewhere before 256 cores there is
        // a peak higher than the 256-core value, or at least the growth has
        // flattened dramatically relative to Amdahl.
        let peak =
            (1..=256).map(|p| m.speedup_unit_cores(p as f64).unwrap()).fold(f64::MIN, f64::max);
        assert!(peak >= ext256);
        assert!(amdahl256 / ext256 > 1.2);
    }

    #[test]
    fn invalid_unit_core_count_rejected() {
        let m = model(AppParams::table2_kmeans(), GrowthFunction::Linear);
        assert!(m.speedup_unit_cores(0.0).is_err());
        assert!(m.speedup_unit_cores(-3.0).is_err());
    }

    #[test]
    fn builder_methods_replace_components() {
        let m = model(AppParams::table2_kmeans(), GrowthFunction::Linear)
            .with_growth(GrowthFunction::Logarithmic)
            .with_perf(PerfModel::Linear);
        assert_eq!(m.growth(), &GrowthFunction::Logarithmic);
        assert_eq!(m.perf(), &PerfModel::Linear);
    }
}
