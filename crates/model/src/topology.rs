//! Interconnect topologies and their communication growth functions
//! (paper Section V-E, Eq. 8).
//!
//! For the communication-aware model the overhead of exchanging the partial
//! reduction results depends on how many communication operations the
//! interconnect can sustain concurrently and how far each message travels.
//! The paper derives the 2-D mesh expression
//!
//! ```text
//! growcomm(nc) = 2·(nc − 1)·x·(√nc − 1) / (4·√nc·(√nc − 1)) ≈ √nc / 2
//! ```
//!
//! per reduction element (`x` cancels because the single-thread baseline also
//! moves `x` elements). We implement the exact expression plus the commonly
//! compared alternatives (ring, crossbar, 2-D torus) so the topology choice can
//! be studied as an ablation.

use serde::{Deserialize, Serialize};

/// An on-chip interconnect topology used to exchange partial reduction results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Topology {
    /// 2-D mesh with XY routing (the paper's assumption): `2·√nc·(√nc−1)` links,
    /// average hop count `√nc − 1`.
    #[default]
    Mesh2D,
    /// 2-D torus: twice the bisection links of the mesh and roughly half the
    /// average hop count, so its growth is about a quarter of the mesh's.
    Torus2D,
    /// Unidirectional ring: `nc` links, average hop count `nc / 2`.
    Ring,
    /// Ideal crossbar: every pair connected, one hop, `nc` simultaneous
    /// operations. Growth stays proportional to the per-node volume.
    Crossbar,
    /// An idealised network with unbounded bandwidth and single-cycle delivery:
    /// no communication growth at all (lower bound).
    Ideal,
}

impl Topology {
    /// Relative growth of the communication time of the merging phase when the
    /// partial results of `nc` cores are exchanged, normalised to the
    /// single-core communication time for the same reduction elements.
    ///
    /// The derivation mirrors paper Eq. 8: total traffic is `2·(nc−1)·x`
    /// element-messages (gather + broadcast), each travelling the topology's
    /// average hop count, divided by the number of link-operations the topology
    /// can perform per unit time.
    pub fn comm_growth(&self, nc: f64) -> f64 {
        let nc = nc.max(1.0);
        if nc <= 1.0 {
            return 0.0;
        }
        match self {
            Topology::Mesh2D => {
                // Exact Eq. 8: 2·(nc−1)·(√nc−1) / (4·√nc·(√nc−1)) = (nc−1)/(2·√nc).
                (nc - 1.0) / (2.0 * nc.sqrt())
            }
            Topology::Torus2D => {
                // Twice the links (wrap-around), half the average distance.
                (nc - 1.0) / (8.0 * nc.sqrt())
            }
            Topology::Ring => {
                // nc links (bidirectional: 2·nc operations), average nc/4 hops
                // for bidirectional routing; traffic 2·(nc−1).
                2.0 * (nc - 1.0) * (nc / 4.0) / (2.0 * nc)
            }
            Topology::Crossbar => {
                // nc simultaneous single-hop operations for 2·(nc−1) messages.
                2.0 * (nc - 1.0) / nc
            }
            Topology::Ideal => 0.0,
        }
    }

    /// The paper's closed-form approximation `√nc / 2` for the 2-D mesh.
    /// Exposed so the harness can report both the exact and the approximate
    /// curves (they agree to within a few percent at the core counts studied).
    pub fn mesh_approximation(nc: f64) -> f64 {
        nc.max(1.0).sqrt() / 2.0
    }

    /// Number of links in the topology connecting `nc` cores (informational,
    /// used by the NoC simulator for cross-checking).
    pub fn link_count(&self, nc: usize) -> usize {
        let side = (nc as f64).sqrt().ceil() as usize;
        match self {
            Topology::Mesh2D => 2 * side * side.saturating_sub(1),
            Topology::Torus2D => 2 * side * side,
            Topology::Ring => nc,
            Topology::Crossbar => nc * nc.saturating_sub(1) / 2,
            Topology::Ideal => 0,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Mesh2D => "mesh2d",
            Topology::Torus2D => "torus2d",
            Topology::Ring => "ring",
            Topology::Crossbar => "crossbar",
            Topology::Ideal => "ideal",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_has_no_growth() {
        for t in [
            Topology::Mesh2D,
            Topology::Torus2D,
            Topology::Ring,
            Topology::Crossbar,
            Topology::Ideal,
        ] {
            assert_eq!(t.comm_growth(1.0), 0.0, "{t:?}");
        }
    }

    #[test]
    fn mesh_matches_paper_approximation_at_scale() {
        // (nc−1)/(2·√nc) ≈ √nc/2 for large nc; within 10 % at 64 cores.
        for nc in [64.0, 144.0, 256.0] {
            let exact = Topology::Mesh2D.comm_growth(nc);
            let approx = Topology::mesh_approximation(nc);
            assert!((exact - approx).abs() / approx < 0.15, "nc={nc}");
        }
    }

    #[test]
    fn mesh_growth_value_at_32_cores() {
        // Used in the Fig. 7(a) hand-check: (31)/(2·√32) ≈ 2.74.
        let g = Topology::Mesh2D.comm_growth(32.0);
        assert!((g - 2.74).abs() < 0.01, "got {g}");
    }

    #[test]
    fn growth_ordering_between_topologies() {
        // Ring scales worst, then mesh, then torus; the crossbar is bounded and
        // the ideal network has no growth at all. (Crossbar vs. torus flips
        // with core count because the crossbar's growth saturates at 2 while
        // the torus keeps growing as sqrt(nc)/8, so no ordering is asserted
        // between those two.)
        for nc in [16.0, 64.0, 256.0] {
            let ring = Topology::Ring.comm_growth(nc);
            let mesh = Topology::Mesh2D.comm_growth(nc);
            let torus = Topology::Torus2D.comm_growth(nc);
            let xbar = Topology::Crossbar.comm_growth(nc);
            let ideal = Topology::Ideal.comm_growth(nc);
            assert!(ring > mesh, "nc={nc}");
            assert!(mesh > torus, "nc={nc}");
            assert!(torus > ideal, "nc={nc}");
            assert!(xbar > ideal, "nc={nc}");
        }
    }

    #[test]
    fn growth_is_monotone_in_core_count() {
        for t in [Topology::Mesh2D, Topology::Torus2D, Topology::Ring, Topology::Crossbar] {
            let mut prev = -1.0;
            for nc in 1..=256 {
                let g = t.comm_growth(nc as f64);
                assert!(g >= prev - 1e-12, "{t:?} decreased at nc={nc}");
                prev = g;
            }
        }
    }

    #[test]
    fn crossbar_growth_is_bounded() {
        // 2(nc-1)/nc < 2 for all nc.
        for nc in [2.0, 64.0, 1024.0] {
            assert!(Topology::Crossbar.comm_growth(nc) < 2.0);
        }
    }

    #[test]
    fn mesh_link_count_matches_formula() {
        // 16 cores → 4x4 mesh → 2·4·3 = 24 links.
        assert_eq!(Topology::Mesh2D.link_count(16), 24);
        // 64 cores → 8x8 mesh → 2·8·7 = 112 links.
        assert_eq!(Topology::Mesh2D.link_count(64), 112);
    }

    #[test]
    fn default_is_mesh() {
        assert_eq!(Topology::default(), Topology::Mesh2D);
    }
}
