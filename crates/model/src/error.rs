//! Error type shared by all model constructors and evaluators.

use std::fmt;

/// Errors produced when constructing or evaluating the analytical models.
///
/// The models are purely numerical, so every error is a parameter-validation
/// failure: a fraction outside `[0, 1]`, a design that does not fit the chip
/// budget, or a core count that is not positive.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A fraction-valued parameter was outside the closed interval `[0, 1]`.
    FractionOutOfRange {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A set of fractions that must sum to (at most) one did not.
    FractionSumInvalid {
        /// Description of the constraint that was violated.
        what: &'static str,
        /// The observed sum.
        sum: f64,
    },
    /// A BCE area or core-count parameter was not strictly positive.
    NonPositive {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A design does not fit within the chip budget (e.g. `r > n` or `rl > n`).
    BudgetExceeded {
        /// Description of the design that was rejected.
        what: &'static str,
        /// Area requested by the design, in BCE.
        requested: f64,
        /// Area available on the chip, in BCE.
        available: f64,
    },
    /// A numeric evaluation produced a non-finite value.
    NonFinite {
        /// Name of the quantity that became non-finite.
        what: &'static str,
    },
    /// A calibration could not be fitted from the provided measurements.
    Calibration {
        /// Description of what was missing or degenerate.
        what: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::FractionOutOfRange { name, value } => {
                write!(fm, "parameter `{name}` must lie in [0, 1], got {value}")
            }
            ModelError::FractionSumInvalid { what, sum } => {
                write!(fm, "invalid fraction sum for {what}: {sum}")
            }
            ModelError::NonPositive { name, value } => {
                write!(fm, "parameter `{name}` must be strictly positive, got {value}")
            }
            ModelError::BudgetExceeded { what, requested, available } => {
                write!(fm, "{what} requires {requested} BCE but only {available} BCE are available")
            }
            ModelError::NonFinite { what } => {
                write!(fm, "evaluation of {what} produced a non-finite value")
            }
            ModelError::Calibration { what } => {
                write!(fm, "calibration failed: {what}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Validate that `value` is a fraction in `[0, 1]`.
pub(crate) fn check_fraction(name: &'static str, value: f64) -> Result<f64, ModelError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(ModelError::FractionOutOfRange { name, value })
    }
}

/// Validate that `value` is strictly positive and finite.
pub(crate) fn check_positive(name: &'static str, value: f64) -> Result<f64, ModelError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(ModelError::NonPositive { name, value })
    }
}

/// Validate that a computed speedup (or similar quantity) is finite.
pub(crate) fn check_finite(what: &'static str, value: f64) -> Result<f64, ModelError> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(ModelError::NonFinite { what })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_accepts_bounds() {
        assert_eq!(check_fraction("x", 0.0).unwrap(), 0.0);
        assert_eq!(check_fraction("x", 1.0).unwrap(), 1.0);
        assert_eq!(check_fraction("x", 0.5).unwrap(), 0.5);
    }

    #[test]
    fn fraction_rejects_out_of_range() {
        assert!(check_fraction("x", -0.01).is_err());
        assert!(check_fraction("x", 1.01).is_err());
        assert!(check_fraction("x", f64::NAN).is_err());
        assert!(check_fraction("x", f64::INFINITY).is_err());
    }

    #[test]
    fn positive_rejects_zero_and_negative() {
        assert!(check_positive("n", 0.0).is_err());
        assert!(check_positive("n", -1.0).is_err());
        assert!(check_positive("n", f64::NAN).is_err());
        assert_eq!(check_positive("n", 2.5).unwrap(), 2.5);
    }

    #[test]
    fn display_messages_mention_parameter_names() {
        let e = ModelError::FractionOutOfRange { name: "f", value: 2.0 };
        assert!(e.to_string().contains('f'));
        let e =
            ModelError::BudgetExceeded { what: "large core", requested: 512.0, available: 256.0 };
        assert!(e.to_string().contains("512"));
        assert!(e.to_string().contains("256"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_error<T: std::error::Error>() {}
        assert_error::<ModelError>();
    }
}
