//! Hill–Marty multicore speedup models (paper Eq. 2 and Eq. 3).
//!
//! These are the baselines the paper extends: they assume the serial fraction
//! is *constant*, independent of scaling, which is exactly the optimistic
//! assumption the merging-phase study corrects.
//!
//! * Symmetric CMP (Eq. 2): `n` BCE split into `n/r` cores of `r` BCE each.
//!   The serial section runs on one core at `perf(r)`; the parallel section
//!   runs on all `n/r` cores at `perf(r)` each.
//! * Asymmetric CMP (Eq. 3): one large core of `r` BCE plus `n - r` 1-BCE
//!   cores. The serial section runs on the large core; the parallel section
//!   uses the large core *and* the small cores (`perf(r) + n - r`).
//!
//! This module also provides a generalised asymmetric expression in which the
//! small cores may themselves be larger than 1 BCE (matching the designs of
//! paper Figure 5, where the parallel cores have `r ∈ {1, 4, 16}` BCE and the
//! large core `rl` BCE); the constant-serial-fraction assumption is kept.

use crate::chip::{AsymmetricDesign, SymmetricDesign};
use crate::error::{check_finite, check_fraction, ModelError};
use crate::perf::PerfModel;

/// Speedup of a symmetric CMP under Hill–Marty's constant-serial-fraction
/// assumption (paper Eq. 2).
///
/// # Errors
/// Returns an error if `f` is not a fraction or the design/perf model rejects
/// its inputs.
pub fn symmetric_speedup(
    f: f64,
    design: &SymmetricDesign,
    perf: &PerfModel,
) -> Result<f64, ModelError> {
    let f = check_fraction("f", f)?;
    let r = design.r();
    let n = design.budget().total_bce();
    let perf_r = perf.perf(r)?;
    let serial = (1.0 - f) / perf_r;
    let parallel = f * r / (perf_r * n);
    check_finite("hill-marty symmetric speedup", 1.0 / (serial + parallel))
}

/// Speedup of the classic Hill–Marty asymmetric CMP: one large core of
/// `r_large` BCE plus `n - r_large` cores of 1 BCE (paper Eq. 3).
///
/// # Errors
/// Returns an error if `f` is not a fraction, `r_large` is invalid, or the
/// evaluation is non-finite.
pub fn asymmetric_speedup_unit_small(
    f: f64,
    n: f64,
    r_large: f64,
    perf: &PerfModel,
) -> Result<f64, ModelError> {
    let f = check_fraction("f", f)?;
    if !(r_large.is_finite() && r_large > 0.0 && r_large <= n) {
        return Err(ModelError::BudgetExceeded {
            what: "Hill-Marty large core",
            requested: r_large,
            available: n,
        });
    }
    let perf_l = perf.perf(r_large)?;
    let serial = (1.0 - f) / perf_l;
    let parallel = f / (perf_l + (n - r_large));
    check_finite("hill-marty asymmetric speedup", 1.0 / (serial + parallel))
}

/// Generalised Hill–Marty asymmetric speedup for a design whose parallel cores
/// have `r` BCE each (paper Figure 5 designs), still assuming a constant serial
/// fraction. The parallel section is executed by the small cores plus the large
/// core: throughput `perf(r)·(n - rl)/r + perf(rl)`.
///
/// # Errors
/// Returns an error if `f` is not a fraction or the evaluation is non-finite.
pub fn asymmetric_speedup(
    f: f64,
    design: &AsymmetricDesign,
    perf: &PerfModel,
) -> Result<f64, ModelError> {
    let f = check_fraction("f", f)?;
    let perf_l = perf.perf(design.rl())?;
    let perf_r = perf.perf(design.r())?;
    let serial = (1.0 - f) / perf_l;
    let parallel_throughput = perf_r * design.small_cores() + perf_l;
    let parallel = f / parallel_throughput;
    check_finite("hill-marty asymmetric speedup", 1.0 / (serial + parallel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::ChipBudget;

    fn budget() -> ChipBudget {
        ChipBudget::paper_default()
    }

    #[test]
    fn fully_parallel_symmetric_uses_all_cores() {
        // f = 1: speedup = perf(r) * n / r = sqrt(r) * 256 / r.
        let d = SymmetricDesign::new(budget(), 1.0).unwrap();
        let s = symmetric_speedup(1.0, &d, &PerfModel::Pollack).unwrap();
        assert!((s - 256.0).abs() < 1e-9);

        let d = SymmetricDesign::new(budget(), 4.0).unwrap();
        let s = symmetric_speedup(1.0, &d, &PerfModel::Pollack).unwrap();
        assert!((s - 128.0).abs() < 1e-9);
    }

    #[test]
    fn fully_serial_symmetric_equals_core_perf() {
        let d = SymmetricDesign::new(budget(), 16.0).unwrap();
        let s = symmetric_speedup(0.0, &d, &PerfModel::Pollack).unwrap();
        assert!((s - 4.0).abs() < 1e-12);
    }

    #[test]
    fn single_bce_cores_reduce_to_amdahl() {
        // r = 1 => perf = 1, n cores of 1 BCE: Eq. 2 degenerates to Eq. 1.
        let d = SymmetricDesign::new(budget(), 1.0).unwrap();
        for f in [0.9, 0.99, 0.999] {
            let hm = symmetric_speedup(f, &d, &PerfModel::Pollack).unwrap();
            let am = crate::amdahl::amdahl_speedup(f, 256.0).unwrap();
            assert!((hm - am).abs() < 1e-9);
        }
    }

    #[test]
    fn higher_serial_fraction_favours_larger_cores() {
        // Hill & Marty's qualitative finding: as the serial fraction grows the
        // optimum moves toward fewer, more capable cores.
        let perf = PerfModel::Pollack;
        let best_r = |f: f64| -> f64 {
            budget()
                .power_of_two_core_sizes()
                .into_iter()
                .max_by(|&a, &b| {
                    let sa =
                        symmetric_speedup(f, &SymmetricDesign::new(budget(), a).unwrap(), &perf)
                            .unwrap();
                    let sb =
                        symmetric_speedup(f, &SymmetricDesign::new(budget(), b).unwrap(), &perf)
                            .unwrap();
                    sa.partial_cmp(&sb).unwrap()
                })
                .unwrap()
        };
        assert!(best_r(0.999) <= best_r(0.99));
        assert!(best_r(0.99) <= best_r(0.9));
    }

    #[test]
    fn classic_asymmetric_matches_hand_computation() {
        // f = 0.99, n = 256, r_large = 64, Pollack: serial = 0.01/8,
        // parallel = 0.99/(8+192) = 0.99/200.
        let s = asymmetric_speedup_unit_small(0.99, 256.0, 64.0, &PerfModel::Pollack).unwrap();
        let expect = 1.0 / (0.01 / 8.0 + 0.99 / 200.0);
        assert!((s - expect).abs() < 1e-9);
        assert!(s > 150.0 && s < 170.0);
    }

    #[test]
    fn acmp_beats_cmp_under_constant_serial_fraction() {
        // The paper quotes Amdahl-model speedups of 162.3 (asymmetric) vs 79.7
        // (symmetric) for f = 0.99; verify the ordering and rough magnitudes.
        let perf = PerfModel::Pollack;
        let best_sym = budget()
            .power_of_two_core_sizes()
            .into_iter()
            .map(|r| {
                symmetric_speedup(0.99, &SymmetricDesign::new(budget(), r).unwrap(), &perf).unwrap()
            })
            .fold(f64::MIN, f64::max);
        let best_asym = budget()
            .power_of_two_core_sizes()
            .into_iter()
            .map(|rl| asymmetric_speedup_unit_small(0.99, 256.0, rl, &perf).unwrap())
            .fold(f64::MIN, f64::max);
        assert!(best_asym > best_sym);
        assert!((best_sym - 79.7).abs() / 79.7 < 0.05, "got {best_sym}");
        assert!((best_asym - 162.3).abs() / 162.3 < 0.05, "got {best_asym}");
    }

    #[test]
    fn generalised_asymmetric_with_unit_small_cores_matches_classic() {
        let perf = PerfModel::Pollack;
        for rl in [4.0, 16.0, 64.0] {
            let d = AsymmetricDesign::new(budget(), 1.0, rl).unwrap();
            let a = asymmetric_speedup(0.99, &d, &perf).unwrap();
            let b = asymmetric_speedup_unit_small(0.99, 256.0, rl, &perf).unwrap();
            assert!((a - b).abs() < 1e-9, "rl={rl}: {a} vs {b}");
        }
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let d = SymmetricDesign::new(budget(), 4.0).unwrap();
        assert!(symmetric_speedup(1.5, &d, &PerfModel::Pollack).is_err());
        assert!(asymmetric_speedup_unit_small(0.9, 256.0, 300.0, &PerfModel::Pollack).is_err());
    }
}
