//! Chip-area budgets and CMP/ACMP design points.
//!
//! Following Hill & Marty (and the paper's Section II-A), a chip is described
//! by a budget of `n` base-core equivalents (BCE). A *symmetric* design spends
//! the budget on `n / r` identical cores of `r` BCE each; an *asymmetric*
//! design spends `rl` BCE on one large core and builds the rest of the chip
//! from cores of `r` BCE each. The paper uses `n = 256` throughout its
//! design-space study.

use serde::{Deserialize, Serialize};

use crate::error::{check_positive, ModelError};

/// Total chip area available, in base-core equivalents.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipBudget {
    total_bce: f64,
}

impl ChipBudget {
    /// The paper's default budget of 256 BCE.
    pub const PAPER_DEFAULT_BCE: f64 = 256.0;

    /// Create a budget of `total_bce` base-core equivalents (must be positive).
    pub fn new(total_bce: f64) -> Self {
        assert!(
            total_bce.is_finite() && total_bce > 0.0,
            "chip budget must be positive, got {total_bce}"
        );
        ChipBudget { total_bce }
    }

    /// The paper's 256-BCE budget.
    pub fn paper_default() -> Self {
        ChipBudget::new(Self::PAPER_DEFAULT_BCE)
    }

    /// Total area in BCE.
    pub fn total_bce(&self) -> f64 {
        self.total_bce
    }

    /// The per-core areas `r` that divide the budget exactly into a power-of-two
    /// number of cores: 1, 2, 4, …, `total`. This is the x-axis of Figures 4, 5
    /// and 7.
    pub fn power_of_two_core_sizes(&self) -> Vec<f64> {
        let mut sizes = Vec::new();
        let mut r = 1.0;
        while r <= self.total_bce {
            sizes.push(r);
            r *= 2.0;
        }
        sizes
    }
}

impl Default for ChipBudget {
    fn default() -> Self {
        ChipBudget::paper_default()
    }
}

/// A symmetric CMP: the whole budget is spent on identical cores of `r` BCE.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SymmetricDesign {
    budget: ChipBudget,
    r: f64,
}

impl SymmetricDesign {
    /// Create a symmetric design with per-core area `r`.
    ///
    /// # Errors
    /// Rejects non-positive `r` and `r` larger than the budget.
    pub fn new(budget: ChipBudget, r: f64) -> Result<Self, ModelError> {
        let r = check_positive("r", r)?;
        if r > budget.total_bce() {
            return Err(ModelError::BudgetExceeded {
                what: "symmetric per-core area r",
                requested: r,
                available: budget.total_bce(),
            });
        }
        Ok(SymmetricDesign { budget, r })
    }

    /// The chip budget this design was built against.
    pub fn budget(&self) -> ChipBudget {
        self.budget
    }

    /// Per-core area `r`, in BCE.
    pub fn r(&self) -> f64 {
        self.r
    }

    /// Number of cores, `n / r` (may be fractional for analytical sweeps).
    pub fn cores(&self) -> f64 {
        self.budget.total_bce() / self.r
    }

    /// Number of threads participating in the merging phase — one per core.
    pub fn threads(&self) -> f64 {
        self.cores()
    }
}

/// An asymmetric CMP (ACMP): one large core of `rl` BCE for serial sections
/// plus `(n - rl) / r` smaller cores of `r` BCE for the parallel section.
///
/// Following paper Eq. 3/5 the large core also contributes to the parallel
/// section, so the number of merging threads is `(n - rl) / r + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsymmetricDesign {
    budget: ChipBudget,
    r: f64,
    rl: f64,
}

impl AsymmetricDesign {
    /// Create an asymmetric design with small-core area `r` and large-core area
    /// `rl`.
    ///
    /// # Errors
    /// Rejects non-positive areas, `rl` larger than the budget, and `rl < r`
    /// (the "large" core must be at least as big as the small ones).
    pub fn new(budget: ChipBudget, r: f64, rl: f64) -> Result<Self, ModelError> {
        let r = check_positive("r", r)?;
        let rl = check_positive("rl", rl)?;
        if rl > budget.total_bce() {
            return Err(ModelError::BudgetExceeded {
                what: "asymmetric large-core area rl",
                requested: rl,
                available: budget.total_bce(),
            });
        }
        if rl + r > budget.total_bce() && (rl - budget.total_bce()).abs() > f64::EPSILON {
            // Allow the degenerate single-core chip (rl == n), otherwise require
            // room for at least one small core.
            return Err(ModelError::BudgetExceeded {
                what: "asymmetric design (rl plus at least one small core)",
                requested: rl + r,
                available: budget.total_bce(),
            });
        }
        if rl < r {
            return Err(ModelError::NonPositive {
                name: "rl - r (large core must not be smaller than small cores)",
                value: rl - r,
            });
        }
        Ok(AsymmetricDesign { budget, r, rl })
    }

    /// The chip budget this design was built against.
    pub fn budget(&self) -> ChipBudget {
        self.budget
    }

    /// Small-core area `r`, in BCE.
    pub fn r(&self) -> f64 {
        self.r
    }

    /// Large-core area `rl`, in BCE.
    pub fn rl(&self) -> f64 {
        self.rl
    }

    /// Number of small cores, `(n - rl) / r`.
    pub fn small_cores(&self) -> f64 {
        ((self.budget.total_bce() - self.rl) / self.r).max(0.0)
    }

    /// Total number of cores including the large one.
    pub fn cores(&self) -> f64 {
        self.small_cores() + 1.0
    }

    /// Number of threads participating in the parallel section and thus
    /// producing partial results for the merging phase (small cores plus the
    /// large core).
    pub fn threads(&self) -> f64 {
        self.small_cores() + 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_budget_is_256() {
        assert_eq!(ChipBudget::paper_default().total_bce(), 256.0);
        assert_eq!(ChipBudget::default().total_bce(), 256.0);
    }

    #[test]
    #[should_panic]
    fn zero_budget_panics() {
        ChipBudget::new(0.0);
    }

    #[test]
    fn power_of_two_core_sizes_span_the_budget() {
        let sizes = ChipBudget::paper_default().power_of_two_core_sizes();
        assert_eq!(sizes.first().copied(), Some(1.0));
        assert_eq!(sizes.last().copied(), Some(256.0));
        assert_eq!(sizes.len(), 9); // 1,2,4,...,256
    }

    #[test]
    fn symmetric_core_counts_match_paper_examples() {
        let b = ChipBudget::paper_default();
        // "a value of 1 implies a design with 256 cores of 1 BCE each and a
        //  value of 4 implies 64 cores of 4 BCEs each"
        assert_eq!(SymmetricDesign::new(b, 1.0).unwrap().cores(), 256.0);
        assert_eq!(SymmetricDesign::new(b, 4.0).unwrap().cores(), 64.0);
        assert_eq!(SymmetricDesign::new(b, 256.0).unwrap().cores(), 1.0);
    }

    #[test]
    fn symmetric_rejects_oversized_cores() {
        let b = ChipBudget::paper_default();
        assert!(SymmetricDesign::new(b, 512.0).is_err());
        assert!(SymmetricDesign::new(b, 0.0).is_err());
        assert!(SymmetricDesign::new(b, -1.0).is_err());
    }

    #[test]
    fn asymmetric_counts_small_cores() {
        let b = ChipBudget::paper_default();
        let d = AsymmetricDesign::new(b, 1.0, 4.0).unwrap();
        assert_eq!(d.small_cores(), 252.0);
        assert_eq!(d.cores(), 253.0);
        assert_eq!(d.threads(), 253.0);

        let d = AsymmetricDesign::new(b, 4.0, 64.0).unwrap();
        assert_eq!(d.small_cores(), 48.0);
        assert_eq!(d.threads(), 49.0);
    }

    #[test]
    fn asymmetric_allows_single_core_chip() {
        let b = ChipBudget::paper_default();
        let d = AsymmetricDesign::new(b, 1.0, 256.0).unwrap();
        assert_eq!(d.small_cores(), 0.0);
        assert_eq!(d.cores(), 1.0);
    }

    #[test]
    fn asymmetric_rejects_large_core_smaller_than_small() {
        let b = ChipBudget::paper_default();
        assert!(AsymmetricDesign::new(b, 16.0, 4.0).is_err());
    }

    #[test]
    fn asymmetric_rejects_over_budget() {
        let b = ChipBudget::paper_default();
        assert!(AsymmetricDesign::new(b, 1.0, 300.0).is_err());
        // rl = 255.5 leaves no room for a 1-BCE small core.
        assert!(AsymmetricDesign::new(b, 1.0, 255.5).is_err());
    }

    #[test]
    fn designs_serialize_roundtrip() {
        let b = ChipBudget::paper_default();
        let d = AsymmetricDesign::new(b, 4.0, 64.0).unwrap();
        let json = serde_json::to_string(&d).unwrap();
        let back: AsymmetricDesign = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
