//! Predicted serial-section growth (paper Figure 2(b) and 2(d)).
//!
//! Figure 2(b) plots the time spent in serial sections at `p` cores normalised
//! to the single-core serial-section time; the extended model predicts this as
//! `serial_multiplier(p) = fcon + fred·(1 + fored·grow(p))`. Figure 2(d)
//! normalises the model prediction by the value obtained from simulation to
//! quantify accuracy. This module provides both computations as free functions
//! so they can be applied to either paper parameters or measured ones.

use crate::extended::ExtendedModel;
use crate::growth::GrowthFunction;
use crate::params::AppParams;
use crate::perf::PerfModel;

/// Normalised serial-section time at `threads` cores predicted by the extended
/// model for the given parameters and growth function (Figure 2(b) per-point
/// value, = 1 at a single core).
pub fn serial_growth_factor(params: &AppParams, growth: &GrowthFunction, threads: f64) -> f64 {
    ExtendedModel::new(params.clone(), growth.clone(), PerfModel::Pollack)
        .serial_multiplier(threads)
}

/// The full Figure 2(b) series: normalised serial time for each thread count in
/// `thread_counts`.
pub fn serial_growth_series(
    params: &AppParams,
    growth: &GrowthFunction,
    thread_counts: &[usize],
) -> Vec<(usize, f64)> {
    thread_counts.iter().map(|&p| (p, serial_growth_factor(params, growth, p as f64))).collect()
}

/// Figure 2(d): the ratio of the model-predicted serial time to an observed
/// (simulated or measured) serial time, both normalised to their single-core
/// values. A value of 1.0 means the model tracks the observation exactly;
/// values below 1 are underestimation, above 1 overestimation.
pub fn model_accuracy_ratio(predicted_multiplier: f64, observed_multiplier: f64) -> f64 {
    if observed_multiplier <= 0.0 {
        f64::NAN
    } else {
        predicted_multiplier / observed_multiplier
    }
}

/// Convenience: the whole Figure 2(d) series given observed multipliers per
/// thread count.
pub fn model_accuracy_series(
    params: &AppParams,
    growth: &GrowthFunction,
    observed: &[(usize, f64)],
) -> Vec<(usize, f64)> {
    observed
        .iter()
        .map(|&(p, obs)| {
            let pred = serial_growth_factor(params, growth, p as f64);
            (p, model_accuracy_ratio(pred, obs))
        })
        .collect()
}

/// Fit a reduction-overhead coefficient `fored` from observed serial-time
/// multipliers by least squares, assuming the given growth function and the
/// application's `fcon`/`fred` split.
///
/// Solves `multiplier(p) − 1 = fred·fored·grow(p)` for `fored` over all
/// observations with `grow(p) > 0`. Returns `None` if no observation
/// constrains the coefficient (e.g. all at a single thread).
pub fn fit_fored(
    split_fred: f64,
    growth: &GrowthFunction,
    observed: &[(usize, f64)],
) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for &(p, mult) in observed {
        let g = growth.eval(p as f64);
        if g > 0.0 && split_fred > 0.0 {
            let x = split_fred * g;
            let y = mult - 1.0;
            num += x * y;
            den += x * x;
        }
    }
    if den > 0.0 {
        Some((num / den).max(0.0))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_factor_is_one_at_single_core() {
        for p in AppParams::table2_all() {
            let v = serial_growth_factor(&p, &GrowthFunction::Linear, 1.0);
            assert!((v - 1.0).abs() < 1e-12, "{}", p.name);
        }
    }

    #[test]
    fn series_is_monotone_for_linear_growth() {
        let params = AppParams::table2_kmeans();
        let series = serial_growth_series(&params, &GrowthFunction::Linear, &[1, 2, 4, 8, 16, 32]);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn kmeans_sixteen_core_value_matches_hand_computation() {
        let params = AppParams::table2_kmeans();
        let v = serial_growth_factor(&params, &GrowthFunction::Linear, 16.0);
        assert!((v - 5.644).abs() < 1e-3);
    }

    #[test]
    fn hop_grows_more_slowly_in_multiplier_terms() {
        // hop has a small fred (12 %) so despite its large fored its serial
        // multiplier at 16 cores is smaller than kmeans'.
        let k = serial_growth_factor(&AppParams::table2_kmeans(), &GrowthFunction::Linear, 16.0);
        let h = serial_growth_factor(&AppParams::table2_hop(), &GrowthFunction::Linear, 16.0);
        assert!(h < k);
        assert!(h > 1.0);
    }

    #[test]
    fn accuracy_ratio_detects_over_and_under_estimation() {
        assert!((model_accuracy_ratio(2.0, 2.0) - 1.0).abs() < 1e-12);
        assert!(model_accuracy_ratio(1.8, 2.0) < 1.0); // underestimate
        assert!(model_accuracy_ratio(2.2, 2.0) > 1.0); // overestimate
        assert!(model_accuracy_ratio(2.0, 0.0).is_nan());
    }

    #[test]
    fn accuracy_series_against_perfect_observation_is_unity() {
        let params = AppParams::table2_fuzzy();
        let growth = GrowthFunction::Linear;
        let observed: Vec<(usize, f64)> = [2usize, 4, 8, 16]
            .iter()
            .map(|&p| (p, serial_growth_factor(&params, &growth, p as f64)))
            .collect();
        let series = model_accuracy_series(&params, &growth, &observed);
        for (_, ratio) in series {
            assert!((ratio - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fit_fored_recovers_the_coefficient() {
        let params = AppParams::table2_kmeans();
        let growth = GrowthFunction::Linear;
        let observed: Vec<(usize, f64)> = [2usize, 4, 8, 16]
            .iter()
            .map(|&p| (p, serial_growth_factor(&params, &growth, p as f64)))
            .collect();
        let fitted = fit_fored(params.split.fred, &growth, &observed).unwrap();
        assert!((fitted - params.fored).abs() < 1e-9);
    }

    #[test]
    fn fit_fored_with_no_information_is_none() {
        assert_eq!(fit_fored(0.4, &GrowthFunction::Linear, &[(1, 1.0)]), None);
        assert_eq!(fit_fored(0.0, &GrowthFunction::Linear, &[(8, 3.0)]), None);
    }

    #[test]
    fn fit_fored_clamps_negative_noise_to_zero() {
        // Observations *below* 1.0 (measurement noise) should not produce a
        // negative coefficient.
        let fitted = fit_fored(0.4, &GrowthFunction::Linear, &[(8, 0.9), (16, 0.95)]).unwrap();
        assert!(fitted >= 0.0);
    }
}
