//! Design-space exploration helpers.
//!
//! The paper's Figures 3, 4, 5 and 7 are all sweeps over chip designs for a
//! fixed application parameter set: per-core area `r` for symmetric CMPs,
//! large-core area `rl` (at fixed small-core area `r`) for asymmetric CMPs.
//! This module produces those curves and locates their optima, for both the
//! extended model and the communication-aware model, so the figure harness and
//! the examples share one implementation.

use serde::{Deserialize, Serialize};

use crate::chip::{AsymmetricDesign, ChipBudget, SymmetricDesign};
use crate::comm::CommModel;
use crate::error::ModelError;
use crate::extended::ExtendedModel;

/// One evaluated point of a design-space sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Area of the swept core in BCE (`r` for symmetric sweeps, `rl` for
    /// asymmetric sweeps).
    pub area: f64,
    /// Number of cores of the resulting design.
    pub cores: f64,
    /// Predicted speedup relative to one base core.
    pub speedup: f64,
}

/// A labelled speedup curve (one line of a paper figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Curve {
    /// Legend label, e.g. `"0.999-Linear"` or `"r = 4"`.
    pub label: String,
    /// The swept points in increasing area order.
    pub points: Vec<DesignPoint>,
}

impl Curve {
    /// The point with the highest speedup (ties resolved toward smaller area).
    pub fn peak(&self) -> Option<DesignPoint> {
        self.points.iter().copied().max_by(|a, b| {
            match a.speedup.partial_cmp(&b.speedup).unwrap() {
                std::cmp::Ordering::Equal => b.area.partial_cmp(&a.area).unwrap(),
                other => other,
            }
        })
    }
}

/// Sweep a symmetric CMP over the power-of-two per-core areas of the budget
/// using the extended model (one line of Figure 4).
pub fn symmetric_curve(
    model: &ExtendedModel,
    budget: ChipBudget,
    label: impl Into<String>,
) -> Result<Curve, ModelError> {
    let mut points = Vec::new();
    for r in budget.power_of_two_core_sizes() {
        let design = SymmetricDesign::new(budget, r)?;
        let speedup = model.speedup_symmetric(&design)?;
        points.push(DesignPoint { area: r, cores: design.cores(), speedup });
    }
    Ok(Curve { label: label.into(), points })
}

/// Sweep an asymmetric CMP over the power-of-two large-core areas for a fixed
/// small-core area `r` using the extended model (one line of Figure 5).
///
/// The largest swept `rl` is half the budget so at least a handful of small
/// cores remain, matching the x-range of the paper's plots (1…128 for a
/// 256-BCE chip).
pub fn asymmetric_curve(
    model: &ExtendedModel,
    budget: ChipBudget,
    r: f64,
    label: impl Into<String>,
) -> Result<Curve, ModelError> {
    let mut points = Vec::new();
    for rl in budget.power_of_two_core_sizes() {
        if rl < r || rl >= budget.total_bce() {
            continue;
        }
        let design = AsymmetricDesign::new(budget, r, rl)?;
        let speedup = model.speedup_asymmetric(&design)?;
        points.push(DesignPoint { area: rl, cores: design.cores(), speedup });
    }
    Ok(Curve { label: label.into(), points })
}

/// Sweep a symmetric CMP under the communication-aware model (Figure 7(a)).
pub fn symmetric_curve_comm(
    model: &CommModel,
    budget: ChipBudget,
    label: impl Into<String>,
) -> Result<Curve, ModelError> {
    let mut points = Vec::new();
    for r in budget.power_of_two_core_sizes() {
        let design = SymmetricDesign::new(budget, r)?;
        let speedup = model.speedup_symmetric(&design)?;
        points.push(DesignPoint { area: r, cores: design.cores(), speedup });
    }
    Ok(Curve { label: label.into(), points })
}

/// Sweep an asymmetric CMP under the communication-aware model (Figure 7(b)).
pub fn asymmetric_curve_comm(
    model: &CommModel,
    budget: ChipBudget,
    r: f64,
    label: impl Into<String>,
) -> Result<Curve, ModelError> {
    let mut points = Vec::new();
    for rl in budget.power_of_two_core_sizes() {
        if rl < r || rl >= budget.total_bce() {
            continue;
        }
        let design = AsymmetricDesign::new(budget, r, rl)?;
        let speedup = model.speedup_asymmetric(&design)?;
        points.push(DesignPoint { area: rl, cores: design.cores(), speedup });
    }
    Ok(Curve { label: label.into(), points })
}

/// The best symmetric design (per-core area and speedup) for a model under a
/// budget, considering power-of-two core sizes.
pub fn best_symmetric(
    model: &ExtendedModel,
    budget: ChipBudget,
) -> Result<DesignPoint, ModelError> {
    let curve = symmetric_curve(model, budget, "best")?;
    curve.peak().ok_or(ModelError::NonFinite { what: "empty symmetric sweep" })
}

/// The best asymmetric design over all combinations of power-of-two small-core
/// and large-core sizes.
pub fn best_asymmetric(
    model: &ExtendedModel,
    budget: ChipBudget,
) -> Result<(f64, DesignPoint), ModelError> {
    let mut best: Option<(f64, DesignPoint)> = None;
    for r in budget.power_of_two_core_sizes() {
        if r >= budget.total_bce() {
            continue;
        }
        let curve = asymmetric_curve(model, budget, r, format!("r={r}"))?;
        if let Some(peak) = curve.peak() {
            let better = match &best {
                None => true,
                Some((_, b)) => peak.speedup > b.speedup,
            };
            if better {
                best = Some((r, peak));
            }
        }
    }
    best.ok_or(ModelError::NonFinite { what: "empty asymmetric sweep" })
}

/// Scalability curve on `p` identical unit cores for `p = 1 … max_cores`
/// (the Figure 3 series). Returns `(p, speedup)` pairs at power-of-two core
/// counts plus the end point.
pub fn unit_core_curve(
    model: &ExtendedModel,
    max_cores: usize,
) -> Result<Vec<(usize, f64)>, ModelError> {
    let mut points = Vec::new();
    let mut p = 1usize;
    while p < max_cores {
        points.push((p, model.speedup_unit_cores(p as f64)?));
        p *= 2;
    }
    points.push((max_cores, model.speedup_unit_cores(max_cores as f64)?));
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::growth::GrowthFunction;
    use crate::params::{AppClass, AppParams};
    use crate::perf::PerfModel;

    fn budget() -> ChipBudget {
        ChipBudget::paper_default()
    }

    fn extended(emb: bool, high_con: bool, high_ovh: bool) -> ExtendedModel {
        let params = AppClass {
            embarrassingly_parallel: emb,
            high_constant: high_con,
            high_reduction_overhead: high_ovh,
        }
        .params();
        ExtendedModel::new(params, GrowthFunction::Linear, PerfModel::Pollack)
    }

    #[test]
    fn symmetric_curve_covers_all_power_of_two_sizes() {
        let c = symmetric_curve(&extended(true, true, false), budget(), "x").unwrap();
        assert_eq!(c.points.len(), 9);
        assert_eq!(c.points.first().unwrap().area, 1.0);
        assert_eq!(c.points.last().unwrap().area, 256.0);
        assert_eq!(c.points.first().unwrap().cores, 256.0);
    }

    #[test]
    fn asymmetric_curve_excludes_degenerate_designs() {
        let c = asymmetric_curve(&extended(true, true, false), budget(), 4.0, "r=4").unwrap();
        // rl values: 4, 8, ..., 128 (256 excluded, < 4 excluded).
        assert!(c.points.iter().all(|p| p.area >= 4.0 && p.area < 256.0));
        assert_eq!(c.points.len(), 6);
    }

    #[test]
    fn peak_finds_the_maximum() {
        let c = symmetric_curve(&extended(true, false, true), budget(), "x").unwrap();
        let peak = c.peak().unwrap();
        for p in &c.points {
            assert!(p.speedup <= peak.speedup + 1e-12);
        }
    }

    #[test]
    fn best_symmetric_never_at_largest_core_for_parallel_apps() {
        // A fully serial chip (r = 256) cannot be optimal for f >= 0.99.
        let best = best_symmetric(&extended(false, false, true), budget()).unwrap();
        assert!(best.area < 256.0);
    }

    #[test]
    fn high_overhead_never_peaks_at_smallest_cores_under_linear_growth() {
        // Paper: "a design with 256 cores (r = 1) never yields the highest
        // speedup" for linear growth.
        for &(emb, con) in &[(true, true), (true, false), (false, true), (false, false)] {
            for &ovh in &[false, true] {
                let best = best_symmetric(&extended(emb, con, ovh), budget()).unwrap();
                assert!(best.area > 1.0, "emb={emb} con={con} ovh={ovh}");
            }
        }
    }

    #[test]
    fn best_asymmetric_prefers_unit_small_cores_for_low_overhead() {
        // Paper Fig. 5(a/b/e/f): low overhead → r = 1 plus one large core wins.
        let (r, _) = best_asymmetric(&extended(false, true, false), budget()).unwrap();
        assert_eq!(r, 1.0);
    }

    #[test]
    fn best_asymmetric_prefers_larger_small_cores_for_high_overhead() {
        // Paper Fig. 5(d)/(h): non-emb + high overhead → r > 1 wins.
        let (r, _) = best_asymmetric(&extended(false, true, true), budget()).unwrap();
        assert!(r > 1.0);
        let (r, _) = best_asymmetric(&extended(false, false, true), budget()).unwrap();
        assert!(r > 1.0);
    }

    #[test]
    fn unit_core_curve_starts_at_one() {
        let params = AppParams::table2_kmeans();
        let m = ExtendedModel::new(params, GrowthFunction::Linear, PerfModel::Pollack);
        let curve = unit_core_curve(&m, 256).unwrap();
        assert_eq!(curve.first().unwrap().0, 1);
        assert!((curve.first().unwrap().1 - 1.0).abs() < 1e-9);
        assert_eq!(curve.last().unwrap().0, 256);
    }

    #[test]
    fn acmp_advantage_limited_for_high_overhead() {
        // Paper conclusion (c): the performance potential of asymmetric over
        // symmetric CMPs is limited for high-overhead applications.
        let low = extended(false, true, false);
        let high = extended(false, true, true);
        let margin = |m: &ExtendedModel| {
            let sym = best_symmetric(m, budget()).unwrap().speedup;
            let (_, asym) = best_asymmetric(m, budget()).unwrap();
            asym.speedup / sym
        };
        assert!(margin(&low) > margin(&high));
    }

    #[test]
    fn curves_serialize_roundtrip() {
        let c = symmetric_curve(&extended(true, true, true), budget(), "x").unwrap();
        let json = serde_json::to_string(&c).unwrap();
        let back: Curve = serde_json::from_str(&json).unwrap();
        assert_eq!(c.label, back.label);
        assert_eq!(c.points.len(), back.points.len());
        for (a, b) in c.points.iter().zip(back.points.iter()) {
            assert_eq!(a.area, b.area);
            assert!((a.speedup - b.speedup).abs() < 1e-9);
        }
    }
}
