//! Stable 64-bit FNV-1a fingerprinting.
//!
//! Used wherever a fingerprint must be reproducible across runs *and*
//! toolchains — memoisation-cache keys and the parameterised labels that end
//! up in persisted sweep exports. `std`'s hashers make no cross-release
//! stability promise, so the workspace carries this one implementation and
//! every fingerprint goes through it.
//!
//! Negative zero is canonicalised to `0.0` before hashing so semantically
//! equal floating-point inputs always fingerprint identically.

/// An incremental FNV-1a hasher over bytes, floats and strings.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    /// The standard FNV-1a 64-bit offset basis.
    pub const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

    /// A hasher seeded with the standard offset basis.
    pub fn new() -> Self {
        Self::with_basis(Self::OFFSET_BASIS)
    }

    /// A hasher seeded with an explicit basis (two different bases give two
    /// independent streams, e.g. for a 128-bit key).
    pub fn with_basis(basis: u64) -> Self {
        Fnv64 { state: basis }
    }

    /// Fold one byte into the fingerprint.
    pub fn write_u8(&mut self, byte: u8) {
        self.state = (self.state ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
    }

    /// Fold a float's bit pattern in, canonicalising `-0.0` to `0.0`.
    pub fn write_f64(&mut self, value: f64) {
        let canonical = if value == 0.0 { 0.0f64 } else { value };
        for byte in canonical.to_bits().to_le_bytes() {
            self.write_u8(byte);
        }
    }

    /// Fold a string in, terminated so adjacent strings cannot alias.
    pub fn write_str(&mut self, s: &str) {
        for byte in s.bytes() {
            self.write_u8(byte);
        }
        self.write_u8(0xff);
    }

    /// The current fingerprint.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a of "a" is a published test vector.
        let mut h = Fnv64::new();
        h.write_u8(b'a');
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn negative_zero_canonicalises() {
        let mut a = Fnv64::new();
        let mut b = Fnv64::new();
        a.write_f64(0.0);
        b.write_f64(-0.0);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinct_bases_give_independent_streams() {
        let mut a = Fnv64::new();
        let mut b = Fnv64::with_basis(0x6c62_272e_07bb_0142);
        a.write_f64(1.5);
        b.write_f64(1.5);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn string_termination_prevents_aliasing() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
