//! Fingerprint-keyed registry of calibrated application parameter sets.
//!
//! A [`CatalogueRegistry`] gives every [`CalibratedParams`] a stable,
//! content-derived identifier — its [`CalibratedParams::fingerprint`] — so
//! that long-lived services and their clients can address calibrations by id
//! instead of shipping whole parameter sets back and forth. Two calibrations
//! with identical content always share an id (registration deduplicates), and
//! an id never changes meaning: it is a pure function of the calibration's
//! parameters, growth fit and measured multipliers.

use crate::calibrate::CalibratedParams;

/// An id-addressable collection of calibrations.
///
/// Ids are the 64-bit content fingerprints of the entries, rendered as fixed
/// 16-digit lower-case hex where a string form is needed (wire protocols,
/// reports) — see [`CatalogueRegistry::format_id`] / `parse_id`.
#[derive(Debug, Clone, Default)]
pub struct CatalogueRegistry {
    entries: Vec<CalibratedParams>,
}

impl CatalogueRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        CatalogueRegistry { entries: Vec::new() }
    }

    /// A registry seeded with `calibrations` (deduplicated by fingerprint).
    pub fn from_calibrations(calibrations: impl IntoIterator<Item = CalibratedParams>) -> Self {
        let mut registry = CatalogueRegistry::new();
        for calibration in calibrations {
            registry.register(calibration);
        }
        registry
    }

    /// Register a calibration and return its id. Re-registering identical
    /// content is a no-op returning the existing id.
    pub fn register(&mut self, calibration: CalibratedParams) -> u64 {
        let id = calibration.fingerprint();
        if self.get(id).is_none() {
            self.entries.push(calibration);
        }
        id
    }

    /// Look up a calibration by id.
    pub fn get(&self, id: u64) -> Option<&CalibratedParams> {
        self.entries.iter().find(|c| c.fingerprint() == id)
    }

    /// Look up a calibration by application name (first match).
    pub fn by_name(&self, name: &str) -> Option<&CalibratedParams> {
        self.entries.iter().find(|c| c.app_params().name == name)
    }

    /// Every registered calibration, in registration order.
    pub fn entries(&self) -> &[CalibratedParams] {
        &self.entries
    }

    /// The ids of every entry, in registration order.
    pub fn ids(&self) -> Vec<u64> {
        self.entries.iter().map(|c| c.fingerprint()).collect()
    }

    /// Number of registered calibrations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render an id in its canonical string form (16 hex digits). JSON
    /// numbers are `f64`-backed in this workspace's serialisation, so 64-bit
    /// ids always travel as strings.
    pub fn format_id(id: u64) -> String {
        format!("{id:016x}")
    }

    /// Parse an id previously rendered by [`CatalogueRegistry::format_id`].
    pub fn parse_id(id: &str) -> Option<u64> {
        (id.len() == 16).then(|| u64::from_str_radix(id, 16).ok()).flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::MeasuredRun;

    fn calibration(name: &str, f: f64) -> CalibratedParams {
        let s = 1.0 - f;
        let runs: Vec<MeasuredRun> = [1usize, 2, 4, 8]
            .iter()
            .map(|&p| {
                MeasuredRun::new(p, f / p as f64, s * 0.5, s * 0.5 * (1.0 + 0.4 * (p as f64 - 1.0)))
            })
            .collect();
        CalibratedParams::fit(name, &runs).unwrap()
    }

    #[test]
    fn registration_is_id_stable_and_deduplicating() {
        let mut registry = CatalogueRegistry::new();
        let a = calibration("alpha", 0.99);
        let id = registry.register(a.clone());
        assert_eq!(registry.register(a.clone()), id);
        assert_eq!(registry.len(), 1);
        assert_eq!(id, a.fingerprint());
        assert_eq!(registry.get(id).unwrap().app_params().name, "alpha");
        assert!(registry.get(id ^ 1).is_none());
    }

    #[test]
    fn distinct_content_gets_distinct_ids() {
        let registry = CatalogueRegistry::from_calibrations([
            calibration("alpha", 0.99),
            calibration("beta", 0.95),
        ]);
        let ids = registry.ids();
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0], ids[1]);
        assert_eq!(registry.by_name("beta").unwrap().fingerprint(), ids[1]);
        assert!(registry.by_name("gamma").is_none());
    }

    #[test]
    fn id_strings_round_trip() {
        let id = calibration("alpha", 0.99).fingerprint();
        let text = CatalogueRegistry::format_id(id);
        assert_eq!(text.len(), 16);
        assert_eq!(CatalogueRegistry::parse_id(&text), Some(id));
        assert_eq!(CatalogueRegistry::parse_id("zz"), None);
        assert_eq!(CatalogueRegistry::parse_id("nothexnothexnot!"), None);
    }
}
