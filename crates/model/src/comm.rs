//! Communication-aware extension of the merging-phase model
//! (paper Section V-E, Eq. 6 and Eq. 7).
//!
//! Instead of splitting the reduction fraction into a constant part and an
//! overhead part, this model splits it into a **computation** fraction `fcomp`
//! and a **communication** fraction `fcomm` (both fractions of the serial
//! time). The computation grows according to the chosen reduction
//! implementation (linear / logarithmic / parallel-privatised → constant) and
//! is accelerated by the core executing it; the communication grows according
//! to the interconnect topology (Eq. 8 for the 2-D mesh) and is *not*
//! accelerated by core performance.
//!
//! The paper assumes the ideal split `fcomp == fcomm == fred / 2` ("for
//! reductions to happen the number of communication and computation operations
//! remains the same assuming a single thread").

use serde::{Deserialize, Serialize};

use crate::chip::{AsymmetricDesign, SymmetricDesign};
use crate::error::{check_finite, check_fraction, ModelError};
use crate::growth::GrowthFunction;
use crate::params::AppParams;
use crate::perf::PerfModel;
use crate::topology::Topology;

/// Split of the reduction fraction into computation and communication parts
/// (fractions of the serial time), paper Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommSplit {
    /// Fraction of serial time spent computing the reduction (`fcomp`).
    pub fcomp: f64,
    /// Fraction of serial time spent communicating reduction elements (`fcomm`).
    pub fcomm: f64,
}

impl CommSplit {
    /// The paper's ideal split: computation and communication each take half of
    /// the reduction fraction.
    pub fn ideal(fred: f64) -> Result<Self, ModelError> {
        let fred = check_fraction("fred", fred)?;
        Ok(CommSplit { fcomp: fred / 2.0, fcomm: fred / 2.0 })
    }

    /// An explicit split; the two parts must sum to the reduction fraction the
    /// caller intends (this is not checked here because the reduction fraction
    /// is owned by [`AppParams`]).
    pub fn new(fcomp: f64, fcomm: f64) -> Result<Self, ModelError> {
        Ok(CommSplit {
            fcomp: check_fraction("fcomp", fcomp)?,
            fcomm: check_fraction("fcomm", fcomm)?,
        })
    }

    /// Total reduction fraction represented by the split.
    pub fn fred(&self) -> f64 {
        self.fcomp + self.fcomm
    }
}

/// The communication-aware speedup model of paper Eq. 6/7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommModel {
    params: AppParams,
    split: CommSplit,
    /// Growth of the reduction *computation* (depends on the merge
    /// implementation: serial → linear, tree → logarithmic, privatised
    /// parallel → constant).
    comp_growth: GrowthFunction,
    topology: Topology,
    perf: PerfModel,
}

impl CommModel {
    /// Build a communication-aware model.
    ///
    /// `comp_growth` describes the growth of the reduction computation;
    /// the communication growth is determined by `topology`.
    pub fn new(
        params: AppParams,
        split: CommSplit,
        comp_growth: GrowthFunction,
        topology: Topology,
        perf: PerfModel,
    ) -> Self {
        CommModel { params, split, comp_growth, topology, perf }
    }

    /// The paper's Figure 7 configuration for a given application: ideal
    /// computation/communication split, *parallel* (privatised) merge so the
    /// computation does not grow, 2-D mesh communication, Pollack cores.
    pub fn paper_figure7(params: AppParams) -> Result<Self, ModelError> {
        let split = CommSplit::ideal(params.split.fred)?;
        Ok(CommModel::new(
            params,
            split,
            GrowthFunction::Constant,
            Topology::Mesh2D,
            PerfModel::Pollack,
        ))
    }

    /// Application parameters.
    pub fn params(&self) -> &AppParams {
        &self.params
    }

    /// Computation/communication split in use.
    pub fn split(&self) -> CommSplit {
        self.split
    }

    /// Interconnect topology in use.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Growth function of the reduction computation in use.
    pub fn comp_growth(&self) -> &GrowthFunction {
        &self.comp_growth
    }

    /// Core performance model in use.
    pub fn perf(&self) -> &PerfModel {
        &self.perf
    }

    /// Replace the topology (builder-style), e.g. for topology ablations.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Replace the computation growth function (builder-style).
    pub fn with_comp_growth(mut self, growth: GrowthFunction) -> Self {
        self.comp_growth = growth;
        self
    }

    /// The serial part of the execution-time expression (paper Eq. 6) for a
    /// machine whose serial-executing core has performance `perf_serial` and
    /// whose merging phase involves `nc` cores, expressed as a fraction of the
    /// single-core total execution time.
    fn serial_time(&self, perf_serial: f64, nc: f64) -> f64 {
        let s = self.params.serial_fraction();
        let fcon = self.params.split.fcon;
        let comp = self.split.fcomp * (1.0 + self.comp_growth.eval(nc));
        let comm = self.split.fcomm * (1.0 + self.topology.comm_growth(nc));
        s * ((fcon + comp) / perf_serial + comm)
    }

    /// Speedup of a symmetric CMP under the communication-aware model
    /// (paper Eq. 6 substituted into Eq. 4's structure).
    ///
    /// # Errors
    /// Propagates performance-model validation errors.
    pub fn speedup_symmetric(&self, design: &SymmetricDesign) -> Result<f64, ModelError> {
        let r = design.r();
        let n = design.budget().total_bce();
        let perf_r = self.perf.perf(r)?;
        let nc = design.cores();
        let serial = self.serial_time(perf_r, nc);
        let parallel = self.params.f * r / (perf_r * n);
        check_finite("communication-aware symmetric speedup", 1.0 / (serial + parallel))
    }

    /// Speedup of an asymmetric CMP under the communication-aware model
    /// (paper Eq. 7).
    ///
    /// # Errors
    /// Propagates performance-model validation errors.
    pub fn speedup_asymmetric(&self, design: &AsymmetricDesign) -> Result<f64, ModelError> {
        let perf_l = self.perf.perf(design.rl())?;
        let perf_r = self.perf.perf(design.r())?;
        let nc = design.threads();
        let serial = self.serial_time(perf_l, nc);
        let parallel_throughput = perf_r * design.small_cores() + perf_l;
        let parallel = self.params.f / parallel_throughput;
        check_finite("communication-aware asymmetric speedup", 1.0 / (serial + parallel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::ChipBudget;
    use crate::params::AppClass;

    fn budget() -> ChipBudget {
        ChipBudget::paper_default()
    }

    /// Figure 7 uses the non-embarrassingly-parallel, moderate-constant class.
    fn fig7_params() -> AppParams {
        AppClass {
            embarrassingly_parallel: false,
            high_constant: false,
            high_reduction_overhead: true,
        }
        .params()
    }

    #[test]
    fn ideal_split_halves_the_reduction_fraction() {
        let s = CommSplit::ideal(0.4).unwrap();
        assert!((s.fcomp - 0.2).abs() < 1e-12);
        assert!((s.fcomm - 0.2).abs() < 1e-12);
        assert!((s.fred() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn figure7a_peak_matches_paper() {
        // Paper: symmetric CMP peak speedup 46.6 at r = 8.
        let m = CommModel::paper_figure7(fig7_params()).unwrap();
        let (best_r, best_s) = budget()
            .power_of_two_core_sizes()
            .into_iter()
            .map(|r| (r, m.speedup_symmetric(&SymmetricDesign::new(budget(), r).unwrap()).unwrap()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(best_r, 8.0, "peak should be at r = 8");
        assert!((best_s - 46.6).abs() < 1.5, "got {best_s}");
    }

    #[test]
    fn figure7b_peak_matches_paper() {
        // Paper: asymmetric CMP peak speedup 51.6, with r = 4 slightly better
        // than r = 1.
        let m = CommModel::paper_figure7(fig7_params()).unwrap();
        let best_for = |r: f64| -> f64 {
            budget()
                .power_of_two_core_sizes()
                .into_iter()
                .filter(|&rl| rl >= r && rl < 256.0)
                .map(|rl| {
                    m.speedup_asymmetric(&AsymmetricDesign::new(budget(), r, rl).unwrap()).unwrap()
                })
                .fold(f64::MIN, f64::max)
        };
        let best_r1 = best_for(1.0);
        let best_r4 = best_for(4.0);
        assert!(best_r4 > best_r1, "r=4 should beat r=1 ({best_r4} vs {best_r1})");
        assert!((best_r4 - 51.6).abs() < 1.5, "got {best_r4}");
    }

    #[test]
    fn communication_model_is_more_pessimistic_than_amdahl() {
        // Paper: 46.6 vs 79.7 (symmetric), 51.6 vs 162.3 (asymmetric).
        let params = fig7_params();
        let m = CommModel::paper_figure7(params.clone()).unwrap();
        let best_sym_comm = budget()
            .power_of_two_core_sizes()
            .into_iter()
            .map(|r| m.speedup_symmetric(&SymmetricDesign::new(budget(), r).unwrap()).unwrap())
            .fold(f64::MIN, f64::max);
        let best_sym_amdahl = budget()
            .power_of_two_core_sizes()
            .into_iter()
            .map(|r| {
                crate::hill_marty::symmetric_speedup(
                    params.f,
                    &SymmetricDesign::new(budget(), r).unwrap(),
                    &PerfModel::Pollack,
                )
                .unwrap()
            })
            .fold(f64::MIN, f64::max);
        assert!(best_sym_comm < best_sym_amdahl);
        assert!(best_sym_amdahl / best_sym_comm > 1.5);
    }

    #[test]
    fn acmp_advantage_is_diminished_by_communication() {
        // Under plain Amdahl the ACMP wins by ~2x; under the communication model
        // the margin shrinks dramatically (51.6 vs 46.6 ≈ 1.1x).
        let params = fig7_params();
        let m = CommModel::paper_figure7(params).unwrap();
        let best_sym = budget()
            .power_of_two_core_sizes()
            .into_iter()
            .map(|r| m.speedup_symmetric(&SymmetricDesign::new(budget(), r).unwrap()).unwrap())
            .fold(f64::MIN, f64::max);
        let best_asym = budget()
            .power_of_two_core_sizes()
            .into_iter()
            .flat_map(|r| {
                budget()
                    .power_of_two_core_sizes()
                    .into_iter()
                    .filter(move |&rl| rl >= r && rl < 256.0)
                    .map(move |rl| (r, rl))
            })
            .map(|(r, rl)| {
                m.speedup_asymmetric(&AsymmetricDesign::new(budget(), r, rl).unwrap()).unwrap()
            })
            .fold(f64::MIN, f64::max);
        let margin = best_asym / best_sym;
        assert!(margin > 1.0);
        assert!(margin < 1.3, "ACMP margin should be small, got {margin}");
    }

    #[test]
    fn better_topologies_yield_higher_speedup() {
        let params = fig7_params();
        let d = SymmetricDesign::new(budget(), 4.0).unwrap();
        let base = CommModel::paper_figure7(params).unwrap();
        let mesh = base.clone().with_topology(Topology::Mesh2D).speedup_symmetric(&d).unwrap();
        let torus = base.clone().with_topology(Topology::Torus2D).speedup_symmetric(&d).unwrap();
        let xbar = base.clone().with_topology(Topology::Crossbar).speedup_symmetric(&d).unwrap();
        let ideal = base.with_topology(Topology::Ideal).speedup_symmetric(&d).unwrap();
        assert!(torus > mesh);
        assert!(xbar > mesh);
        assert!(ideal > xbar);
        assert!(ideal > torus);
    }

    #[test]
    fn serial_computation_growth_lowers_speedup() {
        let params = fig7_params();
        let d = SymmetricDesign::new(budget(), 4.0).unwrap();
        let parallel_merge =
            CommModel::paper_figure7(params.clone()).unwrap().speedup_symmetric(&d).unwrap();
        let serial_merge = CommModel::paper_figure7(params)
            .unwrap()
            .with_comp_growth(GrowthFunction::Linear)
            .speedup_symmetric(&d)
            .unwrap();
        assert!(serial_merge < parallel_merge);
    }

    #[test]
    fn split_validation() {
        assert!(CommSplit::ideal(1.5).is_err());
        assert!(CommSplit::new(0.2, 0.3).is_ok());
        assert!(CommSplit::new(-0.1, 0.3).is_err());
    }
}
