//! Classic Amdahl's Law (paper Eq. 1).
//!
//! `speedup(p) = 1 / (s + f/p)` where `s` is the serial fraction, `f = 1 - s`
//! the parallel fraction and `p` the number of processors. In the limit the
//! speedup approaches `1 / s`.

use crate::error::{check_finite, check_fraction, check_positive, ModelError};

/// Speedup of an application with parallel fraction `f` on `p` identical
/// processors (paper Eq. 1).
///
/// # Errors
/// Returns an error if `f` is not a fraction or `p` is not strictly positive.
pub fn amdahl_speedup(f: f64, p: f64) -> Result<f64, ModelError> {
    let f = check_fraction("f", f)?;
    let p = check_positive("p", p)?;
    let s = 1.0 - f;
    check_finite("amdahl speedup", 1.0 / (s + f / p))
}

/// The asymptotic speedup limit `1 / s` as the processor count goes to
/// infinity. Returns `f64::INFINITY` for a fully parallel application.
///
/// # Errors
/// Returns an error if `f` is not a fraction.
pub fn amdahl_speedup_limit(f: f64) -> Result<f64, ModelError> {
    let f = check_fraction("f", f)?;
    let s = 1.0 - f;
    if s == 0.0 {
        Ok(f64::INFINITY)
    } else {
        Ok(1.0 / s)
    }
}

/// Parallel efficiency, `speedup / p`, of an application with parallel fraction
/// `f` on `p` processors.
///
/// # Errors
/// Propagates the validation errors of [`amdahl_speedup`].
pub fn amdahl_efficiency(f: f64, p: f64) -> Result<f64, ModelError> {
    Ok(amdahl_speedup(f, p)? / p)
}

/// The smallest processor count at which Amdahl speedup reaches `target`,
/// or `None` if the target exceeds the asymptotic limit `1 / s`.
///
/// Solves `1 / (s + f/p) = target` for `p`.
///
/// # Errors
/// Returns an error if `f` is not a fraction or `target < 1`.
pub fn processors_for_speedup(f: f64, target: f64) -> Result<Option<f64>, ModelError> {
    let f = check_fraction("f", f)?;
    if !(target.is_finite() && target >= 1.0) {
        return Err(ModelError::NonPositive { name: "target speedup", value: target });
    }
    let s = 1.0 - f;
    let limit = if s == 0.0 { f64::INFINITY } else { 1.0 / s };
    if target > limit {
        return Ok(None);
    }
    if target == 1.0 {
        return Ok(Some(1.0));
    }
    // 1/target = s + f/p  =>  p = f / (1/target - s)
    let denom = 1.0 / target - s;
    if denom <= 0.0 {
        return Ok(None);
    }
    Ok(Some(f / denom))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_processor_gives_unit_speedup() {
        for f in [0.0, 0.5, 0.99, 1.0] {
            assert!((amdahl_speedup(f, 1.0).unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fully_parallel_scales_linearly() {
        for p in [1.0, 2.0, 64.0, 1024.0] {
            assert!((amdahl_speedup(1.0, p).unwrap() - p).abs() < 1e-9);
        }
    }

    #[test]
    fn fully_serial_never_speeds_up() {
        for p in [1.0, 16.0, 4096.0] {
            assert!((amdahl_speedup(0.0, p).unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn one_percent_serial_limits_to_one_hundred() {
        // The introduction's example: a 1 % serial section caps speedup ~100.
        assert!((amdahl_speedup_limit(0.99).unwrap() - 100.0).abs() < 1e-9);
        let s1024 = amdahl_speedup(0.99, 1024.0).unwrap();
        assert!(s1024 < 100.0 && s1024 > 90.0);
    }

    #[test]
    fn speedup_is_monotone_in_processors() {
        let mut prev = 0.0;
        for p in 1..=512 {
            let s = amdahl_speedup(0.999, p as f64).unwrap();
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn speedup_is_monotone_in_parallel_fraction() {
        let mut prev = 0.0;
        for i in 0..=100 {
            let f = i as f64 / 100.0;
            let s = amdahl_speedup(f, 64.0).unwrap();
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn efficiency_decreases_with_processors() {
        let e4 = amdahl_efficiency(0.99, 4.0).unwrap();
        let e64 = amdahl_efficiency(0.99, 64.0).unwrap();
        assert!(e4 > e64);
        assert!(e4 <= 1.0 + 1e-12);
    }

    #[test]
    fn processors_for_speedup_inverts_the_law() {
        let f = 0.99;
        let p = processors_for_speedup(f, 50.0).unwrap().unwrap();
        let s = amdahl_speedup(f, p).unwrap();
        assert!((s - 50.0).abs() < 1e-9);
    }

    #[test]
    fn processors_for_unreachable_speedup_is_none() {
        assert_eq!(processors_for_speedup(0.99, 150.0).unwrap(), None);
        assert!(processors_for_speedup(1.0, 1e9).unwrap().is_some());
    }

    #[test]
    fn processors_for_unit_speedup_is_one() {
        assert_eq!(processors_for_speedup(0.5, 1.0).unwrap(), Some(1.0));
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(amdahl_speedup(1.5, 4.0).is_err());
        assert!(amdahl_speedup(0.5, 0.0).is_err());
        assert!(amdahl_speedup_limit(-0.1).is_err());
        assert!(processors_for_speedup(0.5, 0.5).is_err());
    }
}
