//! Reduction (merging-phase) strategies.
//!
//! After a parallel phase each thread owns a *partial result*; the merging
//! phase combines them into one final result. The paper analyses three
//! implementations, which differ in how their cost grows with the thread
//! count `p` (for `x` reduction elements):
//!
//! | strategy              | total element ops | critical path      | communication      |
//! |-----------------------|-------------------|--------------------|--------------------|
//! | serial linear         | `(p − 1)·x`       | `(p − 1)·x`        | `(p − 1)·x`        |
//! | logarithmic tree      | `(p − 1)·x`       | `ceil(log2 p)·x`   | `(p − 1)·x`        |
//! | parallel (privatised) | `(p − 1)·x`       | `(p − 1)·x / p`    | `2·(p − 1)·x`      |
//!
//! The linear strategy is the kmeans merging loop of paper Algorithm 1; the
//! tree strategy gives the logarithmic growth function; the privatised
//! strategy removes the computational growth but pays for it in communication
//! (paper Section V-E). [`ReduceStats`] records these counts so the timing
//! simulator and the analytical model can be cross-validated against the same
//! run.

use serde::{Deserialize, Serialize};

use crate::pool::{chunk_range, parallel_partials, run_scoped};

/// How the per-thread partial results are merged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReductionStrategy {
    /// Serially accumulate every partial into the first one (linear growth).
    SerialLinear,
    /// Pairwise combining tree (logarithmic number of dependent rounds).
    TreeLog,
    /// Element-partitioned parallel merge: every thread reduces a slice of the
    /// element space across all partials (constant computational growth,
    /// all-to-all communication).
    ParallelPrivatized,
}

impl ReductionStrategy {
    /// Short name for reports and benchmark IDs.
    pub fn name(&self) -> &'static str {
        match self {
            ReductionStrategy::SerialLinear => "serial-linear",
            ReductionStrategy::TreeLog => "tree-log",
            ReductionStrategy::ParallelPrivatized => "parallel-privatized",
        }
    }

    /// All strategies, for sweeps.
    pub fn all() -> [ReductionStrategy; 3] {
        [
            ReductionStrategy::SerialLinear,
            ReductionStrategy::TreeLog,
            ReductionStrategy::ParallelPrivatized,
        ]
    }
}

/// A binary combine operation over partial results of type `T`.
pub trait ReduceOp<T>: Sync {
    /// Combine `other` into `acc`.
    fn combine(&self, acc: &mut T, other: &T);
    /// Number of reduction *elements* in one partial (used for bookkeeping).
    fn elements(&self, value: &T) -> usize;
}

/// Element-wise sum over `Vec<f64>` partials — the shape of the kmeans /
/// fuzzy c-means merging phase (per-cluster, per-dimension accumulators).
#[derive(Debug, Clone, Copy, Default)]
pub struct SumOp;

impl ReduceOp<Vec<f64>> for SumOp {
    fn combine(&self, acc: &mut Vec<f64>, other: &Vec<f64>) {
        assert_eq!(acc.len(), other.len(), "partials must have equal length");
        for (a, b) in acc.iter_mut().zip(other.iter()) {
            *a += *b;
        }
    }

    fn elements(&self, value: &Vec<f64>) -> usize {
        value.len()
    }
}

/// Operation counts recorded while executing a reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReduceStats {
    /// Number of partial results that were merged.
    pub partials: usize,
    /// Number of reduction elements per partial.
    pub elements: usize,
    /// Total element-level combine operations performed (all threads).
    pub total_ops: usize,
    /// Element-level operations on the critical path (longest dependent chain).
    pub critical_path_ops: usize,
    /// Reduction elements logically transferred between threads.
    pub comm_elements: usize,
    /// Number of dependent combining rounds.
    pub rounds: usize,
}

impl ReduceStats {
    /// The analytical operation counts of merging `partials` partial results
    /// of `elements` elements each with `strategy` — the formulas of the
    /// module-header table.
    ///
    /// A single partial (or none) needs no merging: every count, including
    /// the round count, is zero for all strategies.
    pub fn for_strategy(strategy: ReductionStrategy, partials: usize, elements: usize) -> Self {
        if partials <= 1 {
            return ReduceStats { partials, elements, ..ReduceStats::default() };
        }
        let p = partials;
        let x = elements;
        let total_ops = (p - 1) * x;
        let (critical_path_ops, comm_elements, rounds) = match strategy {
            ReductionStrategy::SerialLinear => ((p - 1) * x, (p - 1) * x, p - 1),
            ReductionStrategy::TreeLog => {
                let rounds = (p as f64).log2().ceil() as usize;
                (rounds * x, (p - 1) * x, rounds)
            }
            ReductionStrategy::ParallelPrivatized => {
                let per_thread = ((p - 1) * x).div_ceil(p);
                (per_thread, 2 * (p - 1) * x, 1)
            }
        };
        ReduceStats { partials, elements, total_ops, critical_path_ops, comm_elements, rounds }
    }
}

/// Merge `partials` with the given strategy and combine operation, using up to
/// `num_threads` threads for the strategies that can exploit them.
///
/// Returns the merged result together with the operation counts of the chosen
/// strategy. For the generic entry point the `ParallelPrivatized` strategy
/// falls back to the tree implementation (element-partitioning requires the
/// element-wise representation of [`reduce_elementwise`]); its stats still
/// reflect the privatised cost model.
///
/// # Panics
/// Panics if `partials` is empty.
pub fn reduce_partials<T, Op>(
    mut partials: Vec<T>,
    op: &Op,
    strategy: ReductionStrategy,
    num_threads: usize,
) -> (T, ReduceStats)
where
    T: Send,
    Op: ReduceOp<T>,
{
    assert!(!partials.is_empty(), "cannot reduce zero partials");
    let elements = op.elements(&partials[0]);
    let stats = ReduceStats::for_strategy(strategy, partials.len(), elements);
    let result = match strategy {
        ReductionStrategy::SerialLinear => {
            let mut iter = partials.into_iter();
            let mut acc = iter.next().expect("non-empty");
            for p in iter {
                op.combine(&mut acc, &p);
            }
            acc
        }
        ReductionStrategy::TreeLog | ReductionStrategy::ParallelPrivatized => {
            let mut slots: Vec<Option<T>> = partials.drain(..).map(Some).collect();
            tree_reduce(&mut slots, op, num_threads.max(1));
            slots[0].take().expect("tree reduce leaves the result in slot 0")
        }
    };
    (result, stats)
}

/// Recursive pairwise tree reduction over `slots`, combining the right half
/// into the left half; the final result ends up in `slots[0]`. When more than
/// one thread is available the two halves are reduced concurrently.
fn tree_reduce<T, Op>(slots: &mut [Option<T>], op: &Op, threads: usize)
where
    T: Send,
    Op: ReduceOp<T>,
{
    let len = slots.len();
    if len <= 1 {
        return;
    }
    let mid = len.div_ceil(2);
    let (left, right) = slots.split_at_mut(mid);
    if threads > 1 && right.len() > 1 {
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| tree_reduce(right, op, threads / 2));
            tree_reduce(left, op, threads - threads / 2);
            handle.join().expect("tree reduce worker panicked");
        });
    } else {
        tree_reduce(left, op, 1);
        tree_reduce(right, op, 1);
    }
    let rhs = right[0].take().expect("right half reduced");
    let lhs = left[0].as_mut().expect("left half reduced");
    op.combine(lhs, &rhs);
}

/// Merge element-wise `Vec<f64>` partials (the kmeans/fuzzy accumulator shape)
/// with the given strategy.
///
/// Unlike [`reduce_partials`] this entry point implements the privatised
/// parallel strategy faithfully: the element space is split among
/// `num_threads` threads and each thread sums its slice across *all* partials,
/// which is exactly the access pattern whose communication cost the paper's
/// Section V-E models.
///
/// # Panics
/// Panics if `partials` is empty or the partials have differing lengths.
pub fn reduce_elementwise(
    partials: &[Vec<f64>],
    strategy: ReductionStrategy,
    num_threads: usize,
) -> (Vec<f64>, ReduceStats) {
    assert!(!partials.is_empty(), "cannot reduce zero partials");
    let elements = partials[0].len();
    assert!(
        partials.iter().all(|p| p.len() == elements),
        "all partials must have the same number of elements"
    );
    let stats = ReduceStats::for_strategy(strategy, partials.len(), elements);
    let result = match strategy {
        ReductionStrategy::SerialLinear => {
            let mut acc = partials[0].clone();
            for p in &partials[1..] {
                for (a, b) in acc.iter_mut().zip(p.iter()) {
                    *a += *b;
                }
            }
            acc
        }
        ReductionStrategy::TreeLog => {
            let owned: Vec<Vec<f64>> = partials.to_vec();
            let (r, _) = reduce_partials(owned, &SumOp, ReductionStrategy::TreeLog, num_threads);
            r
        }
        ReductionStrategy::ParallelPrivatized => {
            let threads = num_threads.max(1).min(elements.max(1));
            let chunks = parallel_partials(threads, elements, |ctx, range| {
                let mut out = vec![0.0f64; range.len()];
                for p in partials {
                    for (o, v) in out.iter_mut().zip(p[range.clone()].iter()) {
                        *o += *v;
                    }
                }
                (ctx.tid, out)
            });
            let mut result = vec![0.0f64; elements];
            for (tid, chunk) in chunks {
                let range = chunk_range(tid, threads, elements);
                result[range].copy_from_slice(&chunk);
            }
            result
        }
    };
    (result, stats)
}

/// Convenience: run a full "parallel phase + merging phase" fork-join where
/// each thread produces an element-wise partial over its chunk of `0..len`
/// and the partials are merged with `strategy`. Returns the merged vector and
/// the reduction stats. Used by tests and microbenchmarks.
pub fn map_reduce_elementwise<F>(
    num_threads: usize,
    len: usize,
    elements: usize,
    strategy: ReductionStrategy,
    per_thread: F,
) -> (Vec<f64>, ReduceStats)
where
    F: Fn(usize, std::ops::Range<usize>) -> Vec<f64> + Sync,
{
    let partials = parallel_partials(num_threads, len, |ctx, range| {
        let p = per_thread(ctx.tid, range);
        assert_eq!(p.len(), elements, "per-thread partial has wrong element count");
        p
    });
    reduce_elementwise(&partials, strategy, num_threads)
}

/// Run a closure on every thread and merge per-thread `Vec<f64>` partials,
/// but keep the merging phase on the calling thread (serial linear), the
/// common pattern in the original MineBench code. Provided for parity tests.
pub fn fork_join_serial_merge<F>(num_threads: usize, len: usize, per_thread: F) -> Vec<f64>
where
    F: Fn(usize, std::ops::Range<usize>) -> Vec<f64> + Sync,
{
    let mut result: Option<Vec<f64>> = None;
    let partials = parallel_partials(num_threads, len, |ctx, range| per_thread(ctx.tid, range));
    run_scoped(1, |_| {});
    for p in partials {
        match &mut result {
            None => result = Some(p),
            Some(acc) => {
                for (a, b) in acc.iter_mut().zip(p.iter()) {
                    *a += *b;
                }
            }
        }
    }
    result.expect("at least one partial")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_partials(p: usize, x: usize) -> Vec<Vec<f64>> {
        (0..p).map(|t| (0..x).map(|e| (t * x + e) as f64 * 0.5 + 1.0).collect()).collect()
    }

    fn expected_sum(partials: &[Vec<f64>]) -> Vec<f64> {
        let x = partials[0].len();
        let mut out = vec![0.0; x];
        for p in partials {
            for (o, v) in out.iter_mut().zip(p.iter()) {
                *o += v;
            }
        }
        out
    }

    #[test]
    fn all_strategies_agree_with_sequential_sum() {
        for p in [1usize, 2, 3, 7, 16] {
            for x in [1usize, 8, 73] {
                let partials = make_partials(p, x);
                let expect = expected_sum(&partials);
                for strategy in ReductionStrategy::all() {
                    let (got, _) = reduce_elementwise(&partials, strategy, 4);
                    for (g, e) in got.iter().zip(expect.iter()) {
                        assert!((g - e).abs() < 1e-9, "{strategy:?} p={p} x={x}");
                    }
                }
            }
        }
    }

    #[test]
    fn generic_reduce_matches_elementwise() {
        let partials = make_partials(9, 40);
        let expect = expected_sum(&partials);
        for strategy in [ReductionStrategy::SerialLinear, ReductionStrategy::TreeLog] {
            let (got, _) = reduce_partials(partials.clone(), &SumOp, strategy, 4);
            for (g, e) in got.iter().zip(expect.iter()) {
                assert!((g - e).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn single_partial_is_identity() {
        let partials = make_partials(1, 10);
        for strategy in ReductionStrategy::all() {
            let (got, stats) = reduce_elementwise(&partials, strategy, 4);
            assert_eq!(got, partials[0]);
            assert_eq!(stats.total_ops, 0);
            assert_eq!(stats.critical_path_ops, 0);
            assert_eq!(stats.comm_elements, 0, "{strategy:?}");
            assert_eq!(stats.rounds, 0, "one partial needs no rounds ({strategy:?})");
        }
    }

    #[test]
    fn degenerate_partial_counts_have_all_zero_stats() {
        // partials == 1 (and the defensive 0) must not underflow or report
        // phantom rounds for any strategy.
        for partials in [0usize, 1] {
            for strategy in ReductionStrategy::all() {
                let s = ReduceStats::for_strategy(strategy, partials, 72);
                assert_eq!(s.partials, partials);
                assert_eq!(s.elements, 72);
                assert_eq!(s.total_ops, 0, "{strategy:?}");
                assert_eq!(s.critical_path_ops, 0, "{strategy:?}");
                assert_eq!(s.comm_elements, 0, "{strategy:?}");
                assert_eq!(s.rounds, 0, "{strategy:?}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn empty_partials_panic() {
        reduce_elementwise(&[], ReductionStrategy::SerialLinear, 2);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        reduce_elementwise(&[vec![1.0, 2.0], vec![1.0]], ReductionStrategy::SerialLinear, 2);
    }

    #[test]
    fn stats_linear_growth() {
        let s = ReduceStats::for_strategy(ReductionStrategy::SerialLinear, 16, 72);
        assert_eq!(s.total_ops, 15 * 72);
        assert_eq!(s.critical_path_ops, 15 * 72);
        assert_eq!(s.comm_elements, 15 * 72);
        assert_eq!(s.rounds, 15);
    }

    #[test]
    fn stats_tree_growth() {
        let s = ReduceStats::for_strategy(ReductionStrategy::TreeLog, 16, 72);
        assert_eq!(s.total_ops, 15 * 72);
        assert_eq!(s.critical_path_ops, 4 * 72);
        assert_eq!(s.rounds, 4);
    }

    #[test]
    fn stats_privatized_growth() {
        let s = ReduceStats::for_strategy(ReductionStrategy::ParallelPrivatized, 16, 72);
        assert_eq!(s.total_ops, 15 * 72);
        // Critical path is the per-thread share of the work.
        assert_eq!(s.critical_path_ops, (15 * 72usize).div_ceil(16));
        // Paper: communication grows by 2·(n−1)·x (gather + broadcast).
        assert_eq!(s.comm_elements, 2 * 15 * 72);
        assert_eq!(s.rounds, 1);
    }

    #[test]
    fn stats_critical_path_ordering() {
        // For any p > 2 the critical paths order: privatized < tree < linear.
        for p in [4usize, 8, 64] {
            let x = 100;
            let lin = ReduceStats::for_strategy(ReductionStrategy::SerialLinear, p, x);
            let tree = ReduceStats::for_strategy(ReductionStrategy::TreeLog, p, x);
            let par = ReduceStats::for_strategy(ReductionStrategy::ParallelPrivatized, p, x);
            assert!(par.critical_path_ops < tree.critical_path_ops);
            assert!(tree.critical_path_ops < lin.critical_path_ops);
        }
    }

    #[test]
    fn map_reduce_elementwise_counts_items() {
        // Each thread contributes a histogram of its chunk size; the merged
        // vector must contain the total item count in slot 0.
        let (merged, stats) = map_reduce_elementwise(
            6,
            600,
            4,
            ReductionStrategy::ParallelPrivatized,
            |_tid, range| vec![range.len() as f64, 0.0, 0.0, 0.0],
        );
        assert_eq!(merged[0], 600.0);
        assert_eq!(stats.partials, 6);
        assert_eq!(stats.elements, 4);
    }

    #[test]
    fn fork_join_serial_merge_matches_strategies() {
        let per_thread = |_tid: usize, range: std::ops::Range<usize>| {
            vec![range.len() as f64, range.start as f64]
        };
        let serial = fork_join_serial_merge(5, 50, per_thread);
        let (via_reduce, _) =
            map_reduce_elementwise(5, 50, 2, ReductionStrategy::TreeLog, per_thread);
        assert_eq!(serial[0], via_reduce[0]);
    }

    #[test]
    fn strategy_names_are_distinct() {
        let names: Vec<_> = ReductionStrategy::all().iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 3);
        assert_ne!(names[0], names[1]);
        assert_ne!(names[1], names[2]);
    }

    #[test]
    fn privatized_respects_thread_cap_by_elements() {
        // More threads than elements must still work.
        let partials = make_partials(4, 2);
        let (got, _) = reduce_elementwise(&partials, ReductionStrategy::ParallelPrivatized, 16);
        assert_eq!(got.len(), 2);
        let expect = expected_sum(&partials);
        assert!((got[0] - expect[0]).abs() < 1e-9);
    }
}
