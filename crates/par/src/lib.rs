//! # mp-par — fork-join parallelism and reduction strategies
//!
//! A small, self-contained parallel runtime used by the merging-phases
//! workloads (`mp-workloads`). It deliberately avoids external parallel
//! frameworks so that the *merging phase* — the subject of the reproduced
//! paper — is explicit and instrumentable:
//!
//! * [`pool`] — scoped fork-join execution ([`pool::run_scoped`]), static
//!   chunked [`pool::parallel_for`] / [`pool::parallel_partials`], and a
//!   persistent [`pool::ThreadPool`] for `'static` jobs.
//! * [`reduce`] — the three merge implementations analysed by the paper:
//!   serial linear accumulation, logarithmic tree combining and privatised
//!   parallel (element-partitioned) reduction, together with operation
//!   counters that feed the timing simulator.
//! * [`barrier`] — a sense-reversing spin barrier used by iterative kernels.
//!
//! The API is synchronous and panic-propagating: if a worker panics, the panic
//! is re-raised on the calling thread after all workers have stopped.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod barrier;
pub mod pool;
pub mod reduce;

pub use barrier::SpinBarrier;
pub use pool::{parallel_for, parallel_partials, run_scoped, ThreadCtx, ThreadPool};
pub use reduce::{
    reduce_elementwise, reduce_partials, ReduceOp, ReduceStats, ReductionStrategy, SumOp,
};
