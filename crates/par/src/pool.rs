//! Fork-join execution primitives.
//!
//! Two flavours are provided:
//!
//! * **Scoped fork-join** ([`run_scoped`], [`parallel_for`],
//!   [`parallel_partials`]) built on [`std::thread::scope`]. Each call spawns
//!   its worker threads, runs the closure on every thread and joins before
//!   returning, so the closures may borrow from the caller's stack. This is
//!   the primitive the clustering workloads use for their parallel phases;
//!   per-thread *partial results* returned by [`parallel_partials`] are the
//!   inputs of the merging phase.
//! * A persistent [`ThreadPool`] for `'static` jobs, used where repeated
//!   fork-join over the same worker set matters more than borrowing (the
//!   benchmark harness and the simulator's batch runs).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Sender};

/// Identity of one worker inside a fork-join region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadCtx {
    /// Thread index in `0..num_threads`.
    pub tid: usize,
    /// Total number of threads in the region.
    pub num_threads: usize,
}

impl ThreadCtx {
    /// The half-open sub-range of `0..len` statically assigned to this thread
    /// when `len` items are divided as evenly as possible among all threads.
    ///
    /// Threads with `tid < len % num_threads` receive one extra item, so the
    /// ranges cover `0..len` exactly and differ in length by at most one.
    pub fn chunk(&self, len: usize) -> std::ops::Range<usize> {
        chunk_range(self.tid, self.num_threads, len)
    }
}

/// The half-open range of items assigned to thread `tid` of `num_threads` when
/// `len` items are divided contiguously and as evenly as possible.
pub fn chunk_range(tid: usize, num_threads: usize, len: usize) -> std::ops::Range<usize> {
    assert!(num_threads > 0, "num_threads must be positive");
    assert!(tid < num_threads, "tid {tid} out of range for {num_threads} threads");
    let base = len / num_threads;
    let extra = len % num_threads;
    let start = tid * base + tid.min(extra);
    let size = base + usize::from(tid < extra);
    start..(start + size).min(len)
}

/// Run `f` on `num_threads` scoped threads (thread 0 runs on the calling
/// thread), passing each its [`ThreadCtx`]. Returns when every thread has
/// finished. Panics from any worker are propagated.
///
/// With `num_threads == 1` the closure runs inline with no thread spawned,
/// so single-threaded baselines are free of forking overhead.
pub fn run_scoped<F>(num_threads: usize, f: F)
where
    F: Fn(ThreadCtx) + Sync,
{
    assert!(num_threads > 0, "num_threads must be positive");
    if num_threads == 1 {
        f(ThreadCtx { tid: 0, num_threads: 1 });
        return;
    }
    std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::with_capacity(num_threads - 1);
        for tid in 1..num_threads {
            handles.push(scope.spawn(move || f(ThreadCtx { tid, num_threads })));
        }
        f(ThreadCtx { tid: 0, num_threads });
        for h in handles {
            if let Err(panic) = h.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });
}

/// Statically-chunked parallel loop over `0..len`: each thread receives one
/// contiguous chunk and calls `f(ctx, range)` once.
///
/// The chunking is deterministic (identical to [`ThreadCtx::chunk`]), which
/// keeps per-thread partial results reproducible across runs — important for
/// the instrumentation experiments. Every thread calls `f` exactly once, even
/// when `len < num_threads` leaves its chunk empty, so per-thread bookkeeping
/// (one slot per tid) never depends on the data size.
pub fn parallel_for<F>(num_threads: usize, len: usize, f: F)
where
    F: Fn(ThreadCtx, std::ops::Range<usize>) + Sync,
{
    run_scoped(num_threads, |ctx| f(ctx, ctx.chunk(len)));
}

/// Fork-join map producing one *partial result* per thread: thread `tid`
/// computes `f(ctx, range)` over its chunk of `0..len` and the results are
/// returned in thread order.
///
/// This is exactly the structure whose merge cost the paper studies: after a
/// call to `parallel_partials` the caller owns `num_threads` partial results
/// that must be combined by a reduction strategy (see [`crate::reduce`]).
pub fn parallel_partials<T, F>(num_threads: usize, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(ThreadCtx, std::ops::Range<usize>) -> T + Sync,
{
    let mut slots: Vec<Option<T>> = (0..num_threads).map(|_| None).collect();
    {
        let slots_ptr = SlotWriter::new(&mut slots);
        run_scoped(num_threads, |ctx| {
            let value = f(ctx, ctx.chunk(len));
            // Safety: each thread writes exactly one distinct slot (its tid).
            unsafe { slots_ptr.write(ctx.tid, value) };
        });
    }
    slots.into_iter().map(|s| s.expect("worker did not produce a partial")).collect()
}

/// Helper granting each worker exclusive access to its own slot of a shared
/// output vector. The indices are distinct by construction (one slot per tid),
/// so the writes never alias.
struct SlotWriter<T> {
    ptr: *mut Option<T>,
    len: usize,
}

// Safety: access is partitioned by slot index; each index is written by at most
// one thread and only read after the scope has joined all threads.
unsafe impl<T: Send> Sync for SlotWriter<T> {}
unsafe impl<T: Send> Send for SlotWriter<T> {}

impl<T> SlotWriter<T> {
    fn new(slots: &mut [Option<T>]) -> Self {
        SlotWriter { ptr: slots.as_mut_ptr(), len: slots.len() }
    }

    /// Write `value` into slot `idx`.
    ///
    /// # Safety
    /// `idx` must be unique per thread and in bounds; the underlying vector
    /// must outlive every call (guaranteed by the enclosing scope).
    unsafe fn write(&self, idx: usize, value: T) {
        assert!(idx < self.len);
        // SAFETY: by contract each idx is written by exactly one thread while
        // the parent scope keeps the slot vector alive.
        unsafe { *self.ptr.add(idx) = Some(value) };
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent worker pool for `'static` jobs.
///
/// Jobs are executed in FIFO order by whichever worker is free.
/// [`ThreadPool::execute_batch_and_wait`] submits a batch and blocks until all
/// of its jobs have completed, providing a coarse fork-join on top of the
/// persistent workers.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    size: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("size", &self.size).finish()
    }
}

impl ThreadPool {
    /// Create a pool with `size` worker threads (`size >= 1`).
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "thread pool needs at least one worker");
        let (sender, receiver) = unbounded::<Job>();
        let mut workers = Vec::with_capacity(size);
        for i in 0..size {
            let rx = receiver.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("mp-par-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("failed to spawn pool worker"),
            );
        }
        ThreadPool { sender: Some(sender), workers, size }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Submit a single fire-and-forget job.
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.sender
            .as_ref()
            .expect("pool already shut down")
            .send(Box::new(job))
            .expect("pool workers have exited");
    }

    /// Submit `jobs` and block until every one of them has run.
    pub fn execute_batch_and_wait<F>(&self, jobs: Vec<F>)
    where
        F: FnOnce() + Send + 'static,
    {
        let pending = Arc::new(AtomicUsize::new(jobs.len()));
        for job in jobs {
            let pending = Arc::clone(&pending);
            self.execute(move || {
                job();
                pending.fetch_sub(1, Ordering::Release);
            });
        }
        while pending.load(Ordering::Acquire) != 0 {
            std::thread::yield_now();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets the workers drain outstanding jobs and exit.
        drop(self.sender.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for len in [0usize, 1, 7, 16, 1000, 1001] {
            for nt in [1usize, 2, 3, 7, 16] {
                let mut covered = vec![0u8; len];
                for tid in 0..nt {
                    for i in chunk_range(tid, nt, len) {
                        covered[i] += 1;
                    }
                }
                assert!(covered.iter().all(|&c| c == 1), "len={len} nt={nt}");
            }
        }
    }

    #[test]
    fn chunk_sizes_differ_by_at_most_one() {
        for len in [10usize, 17, 255, 1024] {
            for nt in [2usize, 3, 5, 16] {
                let sizes: Vec<usize> = (0..nt).map(|t| chunk_range(t, nt, len).len()).collect();
                let max = *sizes.iter().max().unwrap();
                let min = *sizes.iter().min().unwrap();
                assert!(max - min <= 1, "len={len} nt={nt} sizes={sizes:?}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn chunk_range_rejects_bad_tid() {
        chunk_range(4, 4, 10);
    }

    #[test]
    fn single_thread_chunk_is_the_whole_range() {
        // p = 1 edge case: thread 0 owns 0..len for any len, including 0.
        for len in [0usize, 1, 5, 1024] {
            assert_eq!(chunk_range(0, 1, len), 0..len);
            assert_eq!(ThreadCtx { tid: 0, num_threads: 1 }.chunk(len), 0..len);
        }
    }

    #[test]
    fn fewer_items_than_threads_gives_one_item_chunks_then_empty() {
        // len < num_threads edge case: the first `len` threads get exactly one
        // item each (their own index) and the rest get empty ranges — never an
        // out-of-bounds or overlapping range.
        let (len, nt) = (3usize, 16usize);
        for tid in 0..nt {
            let range = chunk_range(tid, nt, len);
            if tid < len {
                assert_eq!(range, tid..tid + 1, "tid={tid}");
            } else {
                assert!(range.is_empty(), "tid={tid} got {range:?}");
                assert!(range.start <= len && range.end <= len, "tid={tid} got {range:?}");
            }
        }
    }

    #[test]
    fn empty_range_chunks_are_empty_for_every_thread() {
        for tid in 0..8 {
            assert!(chunk_range(tid, 8, 0).is_empty());
        }
    }

    #[test]
    fn parallel_for_calls_every_thread_even_with_empty_chunks() {
        // Each thread must be called exactly once regardless of len, so
        // per-tid bookkeeping never depends on the data size.
        for len in [0usize, 3, 100] {
            let calls = AtomicUsize::new(0);
            parallel_for(16, len, |_ctx, _range| {
                calls.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(calls.into_inner(), 16, "len={len}");
        }
    }

    #[test]
    fn run_scoped_uses_all_threads() {
        let seen = Mutex::new(Vec::new());
        run_scoped(8, |ctx| {
            assert_eq!(ctx.num_threads, 8);
            seen.lock().unwrap().push(ctx.tid);
        });
        let mut tids = seen.into_inner().unwrap();
        tids.sort_unstable();
        assert_eq!(tids, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn run_scoped_single_thread_runs_inline() {
        let caller = std::thread::current().id();
        run_scoped(1, |ctx| {
            assert_eq!(ctx.tid, 0);
            assert_eq!(std::thread::current().id(), caller);
        });
    }

    #[test]
    #[should_panic]
    fn run_scoped_rejects_zero_threads() {
        run_scoped(0, |_| {});
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            run_scoped(4, |ctx| {
                if ctx.tid == 2 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn parallel_for_sums_correctly() {
        let n = 100_000usize;
        let total = AtomicU64::new(0);
        parallel_for(7, n, |_ctx, range| {
            let local: u64 = range.map(|i| i as u64).sum();
            total.fetch_add(local, Ordering::Relaxed);
        });
        let expect: u64 = (0..n as u64).sum();
        assert_eq!(total.into_inner(), expect);
    }

    #[test]
    fn parallel_for_handles_more_threads_than_items() {
        let count = AtomicUsize::new(0);
        parallel_for(16, 3, |_ctx, range| {
            count.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(count.into_inner(), 3);
    }

    #[test]
    fn parallel_partials_preserves_thread_order() {
        let partials = parallel_partials(6, 60, |ctx, range| (ctx.tid, range.len()));
        assert_eq!(partials.len(), 6);
        for (i, (tid, len)) in partials.iter().enumerate() {
            assert_eq!(*tid, i);
            assert_eq!(*len, 10);
        }
    }

    #[test]
    fn parallel_partials_equal_sequential_fold() {
        let data: Vec<u64> = (0..10_000).map(|i| i * 3 + 1).collect();
        let partials =
            parallel_partials(5, data.len(), |_ctx, range| data[range].iter().sum::<u64>());
        let parallel_sum: u64 = partials.iter().sum();
        let sequential: u64 = data.iter().sum();
        assert_eq!(parallel_sum, sequential);
    }

    #[test]
    fn parallel_partials_with_empty_input() {
        let partials = parallel_partials(4, 0, |_ctx, range| range.len());
        assert_eq!(partials, vec![0, 0, 0, 0]);
    }

    #[test]
    fn thread_pool_runs_jobs() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.size(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<_> = (0..64)
            .map(|_| {
                let c = Arc::clone(&counter);
                move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            })
            .collect();
        pool.execute_batch_and_wait(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn thread_pool_drop_waits_for_outstanding_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..32 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop joins workers after the queue drains
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    #[should_panic]
    fn thread_pool_rejects_zero_workers() {
        ThreadPool::new(0);
    }
}
