//! A sense-reversing spin barrier.
//!
//! Iterative kernels (kmeans, fuzzy c-means) alternate between a parallel
//! assignment phase and a merging phase. When they are run on a fixed set of
//! worker threads the phases are separated by barriers; a sense-reversing
//! barrier is the classic low-latency choice for that pattern because it needs
//! only one atomic counter and one flag, and it is reusable without
//! re-initialisation.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A reusable spin barrier for a fixed number of participants.
///
/// Each call to [`SpinBarrier::wait`] blocks (spinning, with `yield_now`)
/// until all `participants` threads have called it; the call returns `true`
/// on exactly one thread per generation (the "leader", the last to arrive),
/// mirroring [`std::sync::Barrier`]'s `is_leader`.
#[derive(Debug)]
pub struct SpinBarrier {
    participants: usize,
    arrived: AtomicUsize,
    sense: AtomicBool,
}

impl SpinBarrier {
    /// Create a barrier for `participants` threads (must be at least 1).
    pub fn new(participants: usize) -> Self {
        assert!(participants > 0, "barrier needs at least one participant");
        SpinBarrier { participants, arrived: AtomicUsize::new(0), sense: AtomicBool::new(false) }
    }

    /// Number of participating threads.
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Wait until all participants have reached the barrier.
    ///
    /// Returns `true` on the last thread to arrive (the one that releases the
    /// others), `false` on every other thread.
    pub fn wait(&self) -> bool {
        let local_sense = !self.sense.load(Ordering::Relaxed);
        let position = self.arrived.fetch_add(1, Ordering::AcqRel) + 1;
        if position == self.participants {
            // Last arrival: reset the counter and flip the sense, releasing all.
            self.arrived.store(0, Ordering::Relaxed);
            self.sense.store(local_sense, Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != local_sense {
                spins += 1;
                if spins > 64 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::run_scoped;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_participant_is_always_leader() {
        let b = SpinBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
    }

    #[test]
    #[should_panic]
    fn zero_participants_rejected() {
        SpinBarrier::new(0);
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        let threads = 8;
        let generations = 50;
        let barrier = SpinBarrier::new(threads);
        let leaders = AtomicUsize::new(0);
        run_scoped(threads, |_ctx| {
            for _ in 0..generations {
                if barrier.wait() {
                    leaders.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        assert_eq!(leaders.into_inner(), generations);
    }

    #[test]
    fn barrier_separates_phases() {
        // Every thread increments a counter before the barrier; after the
        // barrier all threads must observe the full count.
        let threads = 6;
        let barrier = SpinBarrier::new(threads);
        let counter = AtomicUsize::new(0);
        let violations = AtomicUsize::new(0);
        run_scoped(threads, |_ctx| {
            for round in 1..=20usize {
                counter.fetch_add(1, Ordering::SeqCst);
                barrier.wait();
                if counter.load(Ordering::SeqCst) < round * threads {
                    violations.fetch_add(1, Ordering::Relaxed);
                }
                barrier.wait();
            }
        });
        assert_eq!(violations.into_inner(), 0);
    }

    #[test]
    fn participants_accessor() {
        assert_eq!(SpinBarrier::new(5).participants(), 5);
    }
}
