//! Property tests of the reduction-strategy operation counts: for random
//! partial/element counts, [`ReduceStats`] must reproduce the formulas of the
//! `mp_par::reduce` module-header table,
//!
//! | strategy              | total element ops | critical path      | communication  |
//! |-----------------------|-------------------|--------------------|----------------|
//! | serial linear         | `(p − 1)·x`       | `(p − 1)·x`        | `(p − 1)·x`    |
//! | logarithmic tree      | `(p − 1)·x`       | `ceil(log2 p)·x`   | `(p − 1)·x`    |
//! | parallel (privatised) | `(p − 1)·x`       | `(p − 1)·x / p`    | `2·(p − 1)·x`  |
//!
//! and the stats observed through the public `reduce_elementwise` entry point
//! must agree with the analytical constructor.

use mp_par::reduce::{reduce_elementwise, ReduceStats, ReductionStrategy};
use proptest::prelude::*;

/// Integer ceil(log2 p) for p >= 1, independent of the float implementation.
fn ceil_log2(p: usize) -> usize {
    let mut rounds = 0usize;
    let mut reach = 1usize;
    while reach < p {
        reach *= 2;
        rounds += 1;
    }
    rounds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Serial linear: everything is `(p − 1)·x`, one round per extra partial.
    #[test]
    fn serial_linear_formulas(p in 2usize..512, x in 0usize..4096) {
        let s = ReduceStats::for_strategy(ReductionStrategy::SerialLinear, p, x);
        prop_assert_eq!(s.total_ops, (p - 1) * x);
        prop_assert_eq!(s.critical_path_ops, (p - 1) * x);
        prop_assert_eq!(s.comm_elements, (p - 1) * x);
        prop_assert_eq!(s.rounds, p - 1);
    }

    /// Logarithmic tree: same total work, `ceil(log2 p)` dependent rounds.
    #[test]
    fn tree_log_formulas(p in 2usize..512, x in 0usize..4096) {
        let s = ReduceStats::for_strategy(ReductionStrategy::TreeLog, p, x);
        prop_assert_eq!(s.total_ops, (p - 1) * x);
        prop_assert_eq!(s.rounds, ceil_log2(p));
        prop_assert_eq!(s.critical_path_ops, ceil_log2(p) * x);
        prop_assert_eq!(s.comm_elements, (p - 1) * x);
    }

    /// Privatised parallel: per-thread share on the critical path, double
    /// communication (gather + broadcast), one round.
    #[test]
    fn parallel_privatized_formulas(p in 2usize..512, x in 0usize..4096) {
        let s = ReduceStats::for_strategy(ReductionStrategy::ParallelPrivatized, p, x);
        prop_assert_eq!(s.total_ops, (p - 1) * x);
        prop_assert_eq!(s.critical_path_ops, ((p - 1) * x).div_ceil(p));
        prop_assert_eq!(s.comm_elements, 2 * (p - 1) * x);
        prop_assert_eq!(s.rounds, 1);
    }

    /// One partial (or the defensive zero) merges nothing for any strategy.
    #[test]
    fn degenerate_counts_are_all_zero(partials in 0usize..2, x in 0usize..4096) {
        for strategy in ReductionStrategy::all() {
            let s = ReduceStats::for_strategy(strategy, partials, x);
            prop_assert_eq!(s.total_ops, 0);
            prop_assert_eq!(s.critical_path_ops, 0);
            prop_assert_eq!(s.comm_elements, 0);
            prop_assert_eq!(s.rounds, 0);
        }
    }

    /// The stats returned by the executing entry point agree with the
    /// analytical constructor, and the merge result is the element-wise sum.
    #[test]
    fn executed_stats_match_the_formulas(
        p in 1usize..24,
        x in 1usize..64,
        threads in 1usize..8,
    ) {
        let partials: Vec<Vec<f64>> =
            (0..p).map(|t| (0..x).map(|e| (t * x + e) as f64).collect()).collect();
        for strategy in ReductionStrategy::all() {
            let (merged, stats) = reduce_elementwise(&partials, strategy, threads);
            prop_assert_eq!(stats, ReduceStats::for_strategy(strategy, p, x));
            for (e, value) in merged.iter().enumerate() {
                let expect: f64 = (0..p).map(|t| (t * x + e) as f64).sum();
                prop_assert!((value - expect).abs() < 1e-9);
            }
        }
    }

    /// Critical-path ordering from the paper: privatised < tree ≤ linear for
    /// p ≥ 3 with non-empty partials. Tree equals linear exactly at p = 3
    /// (`ceil(log2 3) = 2 = p − 1`) and is strictly cheaper from p = 4 on.
    #[test]
    fn critical_path_ordering_holds(p in 3usize..512, x in 1usize..4096) {
        let lin = ReduceStats::for_strategy(ReductionStrategy::SerialLinear, p, x);
        let tree = ReduceStats::for_strategy(ReductionStrategy::TreeLog, p, x);
        let par = ReduceStats::for_strategy(ReductionStrategy::ParallelPrivatized, p, x);
        prop_assert!(par.critical_path_ops < tree.critical_path_ops);
        prop_assert!(tree.critical_path_ops <= lin.critical_path_ops);
        if p >= 4 {
            prop_assert!(tree.critical_path_ops < lin.critical_path_ops);
        }
    }
}
