//! 2-D mesh network-on-chip cost model.
//!
//! Communication phases (exchanging partial reduction results, broadcasting
//! merged centres) are charged according to the paper's Section V-E
//! assumptions: the cores are arranged in a `√nc × √nc` mesh with XY routing;
//! a message travels `√nc − 1` hops on average; the mesh offers
//! `4·√nc·(√nc − 1)` simultaneous link operations (bidirectional links). The
//! time to move `m` element-messages is therefore
//!
//! ```text
//! cycles ≈ hop_latency · m · avg_hops / concurrent_ops          (bandwidth bound)
//!        + hop_latency · avg_hops                               (pipeline fill)
//! ```

use serde::{Deserialize, Serialize};

use crate::config::MachineConfig;

/// A 2-D mesh NoC connecting `cores` cores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocModel {
    cores: usize,
    hop_latency: f64,
}

impl NocModel {
    /// Build a mesh for `cores` cores using the hop latency of `config`.
    pub fn new(cores: usize, config: &MachineConfig) -> Self {
        NocModel { cores: cores.max(1), hop_latency: config.noc_hop_latency }
    }

    /// Number of cores attached to the mesh.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Side length of the (square) mesh.
    pub fn side(&self) -> f64 {
        (self.cores as f64).sqrt()
    }

    /// Average hop count of a message under uniform traffic, `√nc − 1`.
    pub fn avg_hops(&self) -> f64 {
        if self.cores <= 1 {
            0.0
        } else {
            (self.side() - 1.0).max(0.0)
        }
    }

    /// Link-operations the mesh can perform concurrently,
    /// `4·√nc·(√nc − 1)` (bidirectional links), at least 1.
    pub fn concurrent_ops(&self) -> f64 {
        if self.cores <= 1 {
            1.0
        } else {
            (4.0 * self.side() * (self.side() - 1.0)).max(1.0)
        }
    }

    /// Cycles to deliver `messages` single-element messages under uniform
    /// all-to-one / one-to-all traffic.
    pub fn transfer_cycles(&self, messages: f64) -> f64 {
        if messages <= 0.0 || self.cores <= 1 {
            return 0.0;
        }
        let serialisation = messages * self.avg_hops() / self.concurrent_ops();
        let pipeline_fill = self.avg_hops();
        self.hop_latency * (serialisation + pipeline_fill)
    }

    /// Cycles for the privatised-reduction exchange of `elements` reduction
    /// elements among `participants` cores: each core sends and receives its
    /// share to/from every other core, `2·(participants − 1)·elements`
    /// element-messages in total (paper Section V-E).
    pub fn reduction_exchange_cycles(&self, elements: f64, participants: usize) -> f64 {
        if participants <= 1 {
            return 0.0;
        }
        let messages = 2.0 * (participants as f64 - 1.0) * elements;
        self.transfer_cycles(messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::table1_baseline()
    }

    #[test]
    fn single_core_mesh_has_no_communication_cost() {
        let noc = NocModel::new(1, &cfg());
        assert_eq!(noc.transfer_cycles(1000.0), 0.0);
        assert_eq!(noc.reduction_exchange_cycles(100.0, 1), 0.0);
        assert_eq!(noc.avg_hops(), 0.0);
    }

    #[test]
    fn two_core_mesh_has_sub_unit_average_distance() {
        let noc = NocModel::new(2, &cfg());
        assert!(noc.avg_hops() > 0.0 && noc.avg_hops() < 1.0);
    }

    #[test]
    fn sixteen_core_mesh_geometry() {
        let noc = NocModel::new(16, &cfg());
        assert!((noc.side() - 4.0).abs() < 1e-12);
        assert!((noc.avg_hops() - 3.0).abs() < 1e-12);
        assert!((noc.concurrent_ops() - 48.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_cycles_scale_with_message_count() {
        let noc = NocModel::new(64, &cfg());
        let small = noc.transfer_cycles(100.0);
        let large = noc.transfer_cycles(10_000.0);
        assert!(large > small);
        assert!(large / small > 20.0, "bandwidth term should dominate for large transfers");
    }

    #[test]
    fn larger_meshes_cost_more_per_all_to_one_exchange() {
        // For a fixed number of reduction elements the exchange gets more
        // expensive as the participant count grows (more messages, more hops).
        let elements = 80.0;
        let mut prev = 0.0;
        for cores in [2usize, 4, 16, 64, 256] {
            let noc = NocModel::new(cores, &cfg());
            let cycles = noc.reduction_exchange_cycles(elements, cores);
            assert!(cycles > prev, "cores={cores}");
            prev = cycles;
        }
    }

    #[test]
    fn zero_messages_cost_nothing() {
        let noc = NocModel::new(16, &cfg());
        assert_eq!(noc.transfer_cycles(0.0), 0.0);
        assert_eq!(noc.transfer_cycles(-5.0), 0.0);
    }
}
