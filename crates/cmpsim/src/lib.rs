//! # mp-cmpsim — an abstract CMP/ACMP timing simulator
//!
//! The paper extracts its application parameters from the SESC cycle-accurate
//! simulator (Table I machine, up to 16 cores). Re-creating SESC is neither
//! possible nor necessary: the study only consumes *per-section execution
//! times* (parallel section, constant serial section, merging section). This
//! crate provides a phase-level timing simulator that produces exactly those
//! quantities for symmetric and asymmetric chip multiprocessors:
//!
//! * [`config`] — the Table I machine description (issue width, cache
//!   hierarchy, NoC latency, clock),
//! * [`corem`] — core timing: area-dependent performance (`perf(r)`, Pollack
//!   by default) applied to an instruction/operation stream,
//! * [`cache`] — a two-level cache cost model giving the average memory access
//!   latency for a phase from its working-set size and sharing behaviour,
//! * [`noc`] — a 2-D mesh interconnect cost model (XY routing, per-hop
//!   latency, link bandwidth) used by explicit communication phases,
//! * [`program`] — the phase-program IR: parallel work, serial work,
//!   reductions with a strategy, broadcasts and memory-touch phases,
//! * [`machine`] — symmetric/asymmetric machine assembly under a BCE budget,
//! * [`engine`] — the timing engine turning (program, machine) into per-phase
//!   cycle counts and an `mp-profile` [`mp_profile::RunProfile`],
//! * [`adapter`] — phase-program builders for the three clustering workloads,
//!   parameterised by the data-set shape (N, D, C), so the simulator's inputs
//!   are derived from the algorithms rather than hard-coded timings.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adapter;
pub mod cache;
pub mod config;
pub mod corem;
pub mod engine;
pub mod machine;
pub mod noc;
pub mod program;

/// Commonly used items.
pub mod prelude {
    pub use crate::adapter::{fuzzy_program, hop_program, kmeans_program, WorkloadShape};
    pub use crate::cache::CacheModel;
    pub use crate::config::MachineConfig;
    pub use crate::corem::CoreModel;
    pub use crate::engine::{simulate, simulate_cycles, simulate_profile, SimReport};
    pub use crate::machine::{Machine, MachineKind};
    pub use crate::noc::NocModel;
    pub use crate::program::{PhaseOp, PhaseProgram};
}

pub use prelude::*;
