//! Phase-program intermediate representation.
//!
//! A [`PhaseProgram`] describes one run of a workload as a sequence of phases
//! with *operation counts* rather than concrete code: how much parallel work,
//! how much serial work, how many reduction elements are merged and with which
//! strategy, and how much data is broadcast. The timing engine executes the
//! same program on differently shaped machines, which is exactly how the paper
//! uses its simulator (same application, 1–16 cores).

use std::borrow::Cow;

use serde::{Deserialize, Serialize};

/// Reduction (merging-phase) implementation assumed by a [`PhaseOp::Reduction`]
/// phase. Mirrors `mp_par::ReductionStrategy` without creating a dependency on
/// the execution crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReductionKind {
    /// Serial accumulation of all per-thread partials (linear growth).
    SerialLinear,
    /// Pairwise combining tree (logarithmic growth of the critical path).
    TreeLog,
    /// Element-partitioned parallel merge (constant computation, all-to-all
    /// communication).
    ParallelPrivatized,
}

impl ReductionKind {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ReductionKind::SerialLinear => "serial-linear",
            ReductionKind::TreeLog => "tree-log",
            ReductionKind::ParallelPrivatized => "parallel-privatized",
        }
    }
}

/// One phase of a program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PhaseOp {
    /// Work executed by all parallel cores.
    ParallelWork {
        /// Label for the profile. `Cow` so the synthetic programs of the DSE
        /// hot path can use static names without per-program heap copies.
        label: Cow<'static, str>,
        /// Total compute operations across all data.
        ops: f64,
        /// Total data references across all data.
        memory_refs: f64,
        /// Size of the data touched, in bytes (determines cache behaviour).
        working_set_bytes: usize,
        /// Optional cap on how many cores can contribute (e.g. hop's tree
        /// construction kernel). `None` means perfectly parallel.
        max_parallelism: Option<usize>,
    },
    /// Work executed on a single core (the large core of an ACMP).
    SerialWork {
        /// Label for the profile.
        label: Cow<'static, str>,
        /// Compute operations.
        ops: f64,
        /// Data references.
        memory_refs: f64,
        /// Size of the data touched, in bytes.
        working_set_bytes: usize,
    },
    /// A merging phase over per-thread partial results.
    Reduction {
        /// Label for the profile.
        label: Cow<'static, str>,
        /// Number of reduction elements per partial (the paper's `x`).
        elements: usize,
        /// Compute operations per element-merge.
        ops_per_element: f64,
        /// Bytes occupied by one element in a partial (sizes the working set,
        /// which grows with the thread count).
        bytes_per_element: usize,
        /// How the merge is implemented.
        kind: ReductionKind,
    },
    /// Broadcasting `elements` merged values back to all cores over the NoC.
    Broadcast {
        /// Label for the profile.
        label: Cow<'static, str>,
        /// Number of elements broadcast.
        elements: usize,
    },
}

impl PhaseOp {
    /// The label of the phase.
    pub fn label(&self) -> &str {
        match self {
            PhaseOp::ParallelWork { label, .. }
            | PhaseOp::SerialWork { label, .. }
            | PhaseOp::Reduction { label, .. }
            | PhaseOp::Broadcast { label, .. } => label.as_ref(),
        }
    }
}

/// A named sequence of phases, optionally repeated (iterative workloads).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseProgram {
    /// Workload name (appears in the resulting profiles).
    pub name: String,
    /// Phases executed once, before the iterative part (e.g. initialisation,
    /// tree construction).
    pub prologue: Vec<PhaseOp>,
    /// Phases executed `iterations` times.
    pub body: Vec<PhaseOp>,
    /// Number of body iterations.
    pub iterations: usize,
}

impl PhaseProgram {
    /// Create an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        PhaseProgram { name: name.into(), prologue: Vec::new(), body: Vec::new(), iterations: 1 }
    }

    /// Append a prologue phase (builder-style).
    pub fn with_prologue(mut self, op: PhaseOp) -> Self {
        self.prologue.push(op);
        self
    }

    /// Append a body phase (builder-style).
    pub fn with_body(mut self, op: PhaseOp) -> Self {
        self.body.push(op);
        self
    }

    /// Set the iteration count (builder-style).
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    /// All phases in execution order (prologue once, body repeated).
    pub fn unrolled(&self) -> impl Iterator<Item = &PhaseOp> {
        self.prologue
            .iter()
            .chain(std::iter::repeat_with(|| self.body.iter()).take(self.iterations).flatten())
    }

    /// Number of phase executions after unrolling.
    pub fn phase_count(&self) -> usize {
        self.prologue.len() + self.body.len() * self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parallel(label: &'static str) -> PhaseOp {
        PhaseOp::ParallelWork {
            label: label.into(),
            ops: 1000.0,
            memory_refs: 100.0,
            working_set_bytes: 4096,
            max_parallelism: None,
        }
    }

    #[test]
    fn builder_assembles_program() {
        let p = PhaseProgram::new("kmeans")
            .with_prologue(parallel("init"))
            .with_body(parallel("assign"))
            .with_body(PhaseOp::Reduction {
                label: "merge".into(),
                elements: 80,
                ops_per_element: 1.0,
                bytes_per_element: 8,
                kind: ReductionKind::SerialLinear,
            })
            .with_iterations(10);
        assert_eq!(p.prologue.len(), 1);
        assert_eq!(p.body.len(), 2);
        assert_eq!(p.phase_count(), 1 + 2 * 10);
        assert_eq!(p.unrolled().count(), 21);
    }

    #[test]
    fn iterations_are_clamped_to_at_least_one() {
        let p = PhaseProgram::new("x").with_body(parallel("a")).with_iterations(0);
        assert_eq!(p.iterations, 1);
        assert_eq!(p.phase_count(), 1);
    }

    #[test]
    fn labels_are_accessible_for_all_variants() {
        let ops = [
            parallel("a"),
            PhaseOp::SerialWork {
                label: "b".into(),
                ops: 1.0,
                memory_refs: 0.0,
                working_set_bytes: 0,
            },
            PhaseOp::Reduction {
                label: "c".into(),
                elements: 1,
                ops_per_element: 1.0,
                bytes_per_element: 8,
                kind: ReductionKind::TreeLog,
            },
            PhaseOp::Broadcast { label: "d".into(), elements: 1 },
        ];
        let labels: Vec<&str> = ops.iter().map(|o| o.label()).collect();
        assert_eq!(labels, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn reduction_kind_names() {
        assert_eq!(ReductionKind::SerialLinear.name(), "serial-linear");
        assert_eq!(ReductionKind::TreeLog.name(), "tree-log");
        assert_eq!(ReductionKind::ParallelPrivatized.name(), "parallel-privatized");
    }

    #[test]
    fn program_serializes_roundtrip() {
        let p = PhaseProgram::new("x").with_body(parallel("a")).with_iterations(3);
        let json = serde_json::to_string(&p).unwrap();
        let back: PhaseProgram = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
