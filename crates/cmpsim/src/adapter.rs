//! Phase-program builders for the clustering workloads.
//!
//! The programs are derived from the *algorithmic structure* of each
//! application and the shape of its data set (`N` points, `D` dimensions,
//! `C` clusters), not from measured timings, so the simulated section times
//! follow from first principles:
//!
//! * **kmeans** — per iteration, the parallel phase performs `N·C·(3D + 2)`
//!   operations (distance evaluation and best-centre selection), the merging
//!   phase reduces `C·D + C + 2` accumulator elements, and the constant serial
//!   phase recomputes the `C·D` centres and checks convergence.
//! * **fuzzy c-means** — the same structure with a heavier parallel phase
//!   (membership denominators couple every pair of clusters) and the same
//!   `C·D + C` reduction elements, which is why its parallel fraction is even
//!   closer to 1 and its reduction share of the serial time is larger.
//! * **hop** — a non-iterative pipeline: tree construction (limited
//!   parallelism, the kernel the paper identifies as hop's scalability
//!   bottleneck), kNN density estimation, hopping/chain chasing, and a
//!   group-table merge whose working set grows with the thread count
//!   (super-linear merging overhead).

use serde::{Deserialize, Serialize};

use crate::program::{PhaseOp, PhaseProgram, ReductionKind};

/// Shape of a clustering problem, the only input the program builders need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadShape {
    /// Number of points / particles `N`.
    pub points: usize,
    /// Number of dimensions `D`.
    pub dims: usize,
    /// Number of clusters `C` (ignored by hop).
    pub clusters: usize,
    /// Number of iterations of the iterative workloads.
    pub iterations: usize,
    /// Neighbour count `k` used by hop's density estimate.
    pub neighbors: usize,
}

impl WorkloadShape {
    /// The paper's kmeans/fuzzy base data set: N = 17 695, D = 9, C = 8.
    pub fn kmeans_base() -> Self {
        WorkloadShape { points: 17_695, dims: 9, clusters: 8, iterations: 20, neighbors: 12 }
    }

    /// The paper's hop default data set: 61 440 particles in 3-D.
    pub fn hop_default() -> Self {
        WorkloadShape { points: 61_440, dims: 3, clusters: 16, iterations: 1, neighbors: 12 }
    }

    /// The paper's hop medium data set: 491 520 particles in 3-D.
    pub fn hop_medium() -> Self {
        WorkloadShape { points: 491_520, dims: 3, clusters: 16, iterations: 1, neighbors: 12 }
    }

    /// Derive a shape from explicit data-set attributes (Table IV variants).
    pub fn from_attributes(points: usize, dims: usize, clusters: usize) -> Self {
        WorkloadShape { points, dims, clusters, iterations: 20, neighbors: 12 }
    }

    fn point_bytes(&self) -> usize {
        self.points * self.dims * 8
    }
}

/// Build the kmeans phase program for a data-set shape.
///
/// `reduction` selects the merge implementation (the paper's Algorithm 1 is
/// the serial linear one).
pub fn kmeans_program(shape: &WorkloadShape, reduction: ReductionKind) -> PhaseProgram {
    let n = shape.points as f64;
    let c = shape.clusters as f64;
    let d = shape.dims as f64;
    let elements = shape.clusters * shape.dims + shape.clusters + 2;
    PhaseProgram::new("kmeans")
        .with_body(PhaseOp::ParallelWork {
            label: "assign-and-accumulate".into(),
            ops: n * c * (3.0 * d + 2.0),
            memory_refs: n * (d + 2.0),
            working_set_bytes: shape.point_bytes(),
            max_parallelism: None,
        })
        .with_body(PhaseOp::Reduction {
            label: "merge-partials".into(),
            elements,
            ops_per_element: 1.0,
            bytes_per_element: 8,
            kind: reduction,
        })
        .with_body(PhaseOp::SerialWork {
            label: "recompute-centers".into(),
            ops: c * d * 2.0 + c + 8.0,
            memory_refs: c * d * 2.0,
            working_set_bytes: (shape.clusters * shape.dims * 8).max(64),
        })
        .with_iterations(shape.iterations)
}

/// Build the fuzzy c-means phase program for a data-set shape.
pub fn fuzzy_program(shape: &WorkloadShape, reduction: ReductionKind) -> PhaseProgram {
    let n = shape.points as f64;
    let c = shape.clusters as f64;
    let d = shape.dims as f64;
    let elements = shape.clusters * shape.dims + shape.clusters;
    PhaseProgram::new("fuzzy")
        .with_body(PhaseOp::ParallelWork {
            label: "memberships".into(),
            // Distances to every centre plus the pairwise membership
            // denominators and the weighted accumulation.
            ops: n * c * (3.0 * d + 2.0 * c + 8.0),
            memory_refs: n * (d + c),
            working_set_bytes: shape.point_bytes(),
            max_parallelism: None,
        })
        .with_body(PhaseOp::Reduction {
            label: "merge-partials".into(),
            elements,
            ops_per_element: 1.0,
            bytes_per_element: 8,
            kind: reduction,
        })
        .with_body(PhaseOp::SerialWork {
            label: "recompute-centers".into(),
            ops: c * d * 3.0 + c,
            memory_refs: c * d * 2.0,
            working_set_bytes: (shape.clusters * shape.dims * 8).max(64),
        })
        .with_iterations(shape.iterations)
}

/// Number of density-peak groups hop typically finds for `points` particles
/// (one per few hundred particles); used to size the group-table merge.
pub fn hop_group_estimate(points: usize) -> usize {
    (points / 256).max(16)
}

/// Build the hop phase program for a data-set shape.
///
/// `tree_build_parallelism` caps the tree-construction kernel (MineBench's
/// kernel scales to only a handful of threads; the paper attributes hop's
/// 13.5× speedup at 16 cores to exactly this).
pub fn hop_program(
    shape: &WorkloadShape,
    reduction: ReductionKind,
    tree_build_parallelism: usize,
) -> PhaseProgram {
    let n = shape.points as f64;
    let k = shape.neighbors as f64;
    let log_n = (shape.points as f64).log2().max(1.0);
    let groups = hop_group_estimate(shape.points);
    PhaseProgram::new("hop")
        .with_prologue(PhaseOp::ParallelWork {
            label: "build-kdtree".into(),
            ops: n * log_n,
            memory_refs: n * log_n / 4.0,
            working_set_bytes: shape.point_bytes(),
            max_parallelism: Some(tree_build_parallelism.max(1)),
        })
        .with_body(PhaseOp::ParallelWork {
            label: "density".into(),
            ops: n * k * log_n,
            memory_refs: n * k,
            working_set_bytes: shape.point_bytes(),
            max_parallelism: None,
        })
        .with_body(PhaseOp::ParallelWork {
            label: "hop-and-chase".into(),
            ops: n * k * log_n * 0.5,
            memory_refs: n * k * 0.5,
            working_set_bytes: shape.point_bytes(),
            max_parallelism: None,
        })
        .with_body(PhaseOp::Reduction {
            label: "merge-group-tables".into(),
            elements: groups,
            // A hash probe, a compare and two accumulations per entry.
            ops_per_element: 8.0,
            // A hash-table entry (key, count, mass, padding).
            bytes_per_element: 32,
            kind: reduction,
        })
        .with_body(PhaseOp::SerialWork {
            label: "filter-groups".into(),
            ops: groups as f64 * (groups as f64).log2().max(1.0),
            memory_refs: groups as f64 * 2.0,
            working_set_bytes: groups * 32,
        })
        .with_iterations(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::machine::Machine;
    use mp_profile::PhaseKind;

    #[test]
    fn kmeans_program_has_three_phases_per_iteration() {
        let p = kmeans_program(&WorkloadShape::kmeans_base(), ReductionKind::SerialLinear);
        assert_eq!(p.body.len(), 3);
        assert_eq!(p.iterations, 20);
        assert!(p.prologue.is_empty());
    }

    #[test]
    fn kmeans_serial_fraction_is_tiny_on_one_core() {
        let p = kmeans_program(&WorkloadShape::kmeans_base(), ReductionKind::SerialLinear);
        let report = simulate(&p, &Machine::table1(1));
        let serial_fraction = report.serial_cycles() / report.total_cycles();
        // Paper Table II: 0.015 %. Ours should be of the same order (< 0.2 %).
        assert!(serial_fraction < 0.002, "serial fraction {serial_fraction}");
        assert!(serial_fraction > 0.0);
    }

    #[test]
    fn fuzzy_has_smaller_serial_fraction_than_kmeans() {
        // Fuzzy's parallel phase is heavier per point while its merge is the
        // same size, so its serial fraction must be smaller (Table II: 0.002 %
        // vs 0.015 %).
        let shape = WorkloadShape::kmeans_base();
        let km =
            simulate(&kmeans_program(&shape, ReductionKind::SerialLinear), &Machine::table1(1));
        let fz = simulate(&fuzzy_program(&shape, ReductionKind::SerialLinear), &Machine::table1(1));
        let km_s = km.serial_cycles() / km.total_cycles();
        let fz_s = fz.serial_cycles() / fz.total_cycles();
        assert!(fz_s < km_s, "fuzzy {fz_s} vs kmeans {km_s}");
    }

    #[test]
    fn kmeans_and_fuzzy_scale_nearly_linearly_to_16_cores() {
        // Figure 2(a): kmeans and fuzzy exhibit speedups close to 16.
        for program in [
            kmeans_program(&WorkloadShape::kmeans_base(), ReductionKind::SerialLinear),
            fuzzy_program(&WorkloadShape::kmeans_base(), ReductionKind::SerialLinear),
        ] {
            let base = simulate(&program, &Machine::table1(1)).total_cycles();
            let at16 = simulate(&program, &Machine::table1(16)).total_cycles();
            let speedup = base / at16;
            assert!(speedup > 14.0, "{}: speedup {speedup}", program.name);
            assert!(speedup <= 16.0 + 1e-9);
        }
    }

    #[test]
    fn hop_speedup_saturates_near_thirteen() {
        // Figure 2(a): hop reaches only ≈ 13.5× at 16 cores because of the
        // tree-construction kernel.
        let program = hop_program(&WorkloadShape::hop_default(), ReductionKind::SerialLinear, 4);
        let base = simulate(&program, &Machine::table1(1)).total_cycles();
        let at16 = simulate(&program, &Machine::table1(16)).total_cycles();
        let speedup = base / at16;
        assert!(speedup > 11.0 && speedup < 15.5, "hop speedup {speedup}");
    }

    #[test]
    fn serial_section_grows_with_core_count() {
        // Figure 2(b): the serial-section time grows as cores are added.
        for program in [
            kmeans_program(&WorkloadShape::kmeans_base(), ReductionKind::SerialLinear),
            fuzzy_program(&WorkloadShape::kmeans_base(), ReductionKind::SerialLinear),
            hop_program(&WorkloadShape::hop_default(), ReductionKind::SerialLinear, 4),
        ] {
            let s1 = simulate(&program, &Machine::table1(1)).serial_cycles();
            let s16 = simulate(&program, &Machine::table1(16)).serial_cycles();
            assert!(
                s16 / s1 > 2.0,
                "{}: serial section should grow, got {}",
                program.name,
                s16 / s1
            );
        }
    }

    #[test]
    fn hop_merge_growth_is_superlinear_in_the_tail() {
        // The paper measures a super-linear merging overhead for hop because of
        // its memory-bound merge. Verify the per-thread merge cost increases
        // with the thread count (the slope steepens once the partial tables
        // outgrow the L1).
        let program = hop_program(&WorkloadShape::hop_default(), ReductionKind::SerialLinear, 4);
        let red = |cores: usize| {
            simulate(&program, &Machine::table1(cores)).cycles_in(PhaseKind::Reduction)
        };
        let r2 = red(2);
        let r8 = red(8);
        let r32 = red(32);
        // Per-partial cost (cost divided by thread count) should increase.
        assert!(r8 / 8.0 >= r2 / 2.0 * 0.99);
        assert!(r32 / 32.0 > r8 / 8.0, "merge cost per partial should grow");
    }

    #[test]
    fn privatized_reduction_produces_communication_phases() {
        let program =
            kmeans_program(&WorkloadShape::kmeans_base(), ReductionKind::ParallelPrivatized);
        let report = simulate(&program, &Machine::table1(16));
        assert!(report.cycles_in(PhaseKind::Communication) > 0.0);
    }

    #[test]
    fn group_estimate_is_reasonable() {
        assert_eq!(hop_group_estimate(61_440), 240);
        assert_eq!(hop_group_estimate(1000), 16);
    }

    #[test]
    fn shape_constructors_match_paper_datasets() {
        let s = WorkloadShape::kmeans_base();
        assert_eq!((s.points, s.dims, s.clusters), (17_695, 9, 8));
        let s = WorkloadShape::from_attributes(35_390, 18, 8);
        assert_eq!((s.points, s.dims, s.clusters), (35_390, 18, 8));
        assert_eq!(WorkloadShape::hop_medium().points, 491_520);
    }
}
