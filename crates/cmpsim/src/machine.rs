//! Machine assembly: symmetric CMPs and asymmetric CMPs under a BCE budget.

use serde::{Deserialize, Serialize};

use crate::config::MachineConfig;
use crate::corem::CoreModel;
use crate::noc::NocModel;

/// The core organisation of a simulated chip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MachineKind {
    /// `cores` identical cores of `core_bce` BCE each.
    Symmetric {
        /// Number of cores.
        cores: usize,
        /// Area of each core in BCE.
        core_bce: f64,
    },
    /// One large core of `large_bce` BCE plus `small_cores` cores of
    /// `small_bce` BCE each. Serial phases run on the large core; parallel
    /// phases use all cores.
    Asymmetric {
        /// Number of small cores.
        small_cores: usize,
        /// Area of each small core in BCE.
        small_bce: f64,
        /// Area of the large core in BCE.
        large_bce: f64,
    },
}

/// A simulated chip multiprocessor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    kind: MachineKind,
    config: MachineConfig,
}

impl Machine {
    /// A symmetric machine of `cores` cores, each `core_bce` BCE.
    pub fn symmetric(cores: usize, core_bce: f64, config: MachineConfig) -> Self {
        assert!(cores > 0, "machine needs at least one core");
        assert!(core_bce > 0.0, "core area must be positive");
        Machine { kind: MachineKind::Symmetric { cores, core_bce }, config }
    }

    /// An asymmetric machine: one `large_bce` core plus `small_cores` cores of
    /// `small_bce` BCE.
    pub fn asymmetric(
        small_cores: usize,
        small_bce: f64,
        large_bce: f64,
        config: MachineConfig,
    ) -> Self {
        assert!(small_bce > 0.0 && large_bce > 0.0, "core areas must be positive");
        assert!(large_bce >= small_bce, "the large core must not be smaller than the small cores");
        Machine { kind: MachineKind::Asymmetric { small_cores, small_bce, large_bce }, config }
    }

    /// The paper's simulation setup: `cores` baseline 1-BCE cores with the
    /// Table I configuration (used for the 1–16-core characterisation runs).
    pub fn table1(cores: usize) -> Self {
        Machine::symmetric(cores, 1.0, MachineConfig::table1_baseline())
    }

    /// The machine's organisation.
    pub fn kind(&self) -> MachineKind {
        self.kind
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Total number of cores (and therefore merging threads).
    pub fn threads(&self) -> usize {
        match self.kind {
            MachineKind::Symmetric { cores, .. } => cores,
            MachineKind::Asymmetric { small_cores, .. } => small_cores + 1,
        }
    }

    /// Total chip area in BCE.
    pub fn total_bce(&self) -> f64 {
        match self.kind {
            MachineKind::Symmetric { cores, core_bce } => cores as f64 * core_bce,
            MachineKind::Asymmetric { small_cores, small_bce, large_bce } => {
                small_cores as f64 * small_bce + large_bce
            }
        }
    }

    /// The core that executes serial phases (the large core of an ACMP, any
    /// core of a CMP).
    pub fn serial_core(&self) -> CoreModel {
        match self.kind {
            MachineKind::Symmetric { core_bce, .. } => CoreModel::with_area(core_bce),
            MachineKind::Asymmetric { large_bce, .. } => CoreModel::with_area(large_bce),
        }
    }

    /// A representative parallel-section core (a small core of an ACMP).
    pub fn parallel_core(&self) -> CoreModel {
        match self.kind {
            MachineKind::Symmetric { core_bce, .. } => CoreModel::with_area(core_bce),
            MachineKind::Asymmetric { small_bce, .. } => CoreModel::with_area(small_bce),
        }
    }

    /// Aggregate compute throughput available to a parallel phase, in
    /// baseline-core equivalents (sum of `perf(r)` over the participating
    /// cores). `max_parallelism` caps how many cores can contribute.
    pub fn parallel_throughput(&self, max_parallelism: Option<usize>) -> f64 {
        let cap = max_parallelism.unwrap_or(usize::MAX).max(1);
        match self.kind {
            MachineKind::Symmetric { cores, core_bce } => {
                let used = cores.min(cap);
                used as f64 * CoreModel::with_area(core_bce).perf()
            }
            MachineKind::Asymmetric { small_cores, small_bce, large_bce } => {
                // The large core always contributes (it is the fastest), then
                // small cores up to the cap.
                let large = CoreModel::with_area(large_bce).perf();
                let used_small = small_cores.min(cap.saturating_sub(1));
                large + used_small as f64 * CoreModel::with_area(small_bce).perf()
            }
        }
    }

    /// The NoC connecting the cores.
    pub fn noc(&self) -> NocModel {
        NocModel::new(self.threads(), &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_machine_shape() {
        let m = Machine::table1(16);
        assert_eq!(m.threads(), 16);
        assert_eq!(m.total_bce(), 16.0);
        assert!((m.serial_core().perf() - 1.0).abs() < 1e-12);
        assert!((m.parallel_throughput(None) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_throughput_scales_with_perf_and_count() {
        let m = Machine::symmetric(64, 4.0, MachineConfig::table1_baseline());
        // 64 cores of perf 2 each.
        assert!((m.parallel_throughput(None) - 128.0).abs() < 1e-12);
        assert_eq!(m.total_bce(), 256.0);
    }

    #[test]
    fn max_parallelism_caps_the_throughput() {
        let m = Machine::table1(16);
        assert!((m.parallel_throughput(Some(4)) - 4.0).abs() < 1e-12);
        assert!((m.parallel_throughput(Some(100)) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_serial_core_is_the_large_one() {
        let m = Machine::asymmetric(252, 1.0, 4.0, MachineConfig::table1_baseline());
        assert!((m.serial_core().perf() - 2.0).abs() < 1e-12);
        assert!((m.parallel_core().perf() - 1.0).abs() < 1e-12);
        assert_eq!(m.threads(), 253);
        assert_eq!(m.total_bce(), 256.0);
        // Throughput: large core (2) + 252 small cores (1 each).
        assert!((m.parallel_throughput(None) - 254.0).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_cap_prefers_the_large_core() {
        let m = Machine::asymmetric(252, 1.0, 16.0, MachineConfig::table1_baseline());
        // Cap of 1 → only the large core contributes.
        assert!((m.parallel_throughput(Some(1)) - 4.0).abs() < 1e-12);
        // Cap of 3 → large + 2 small.
        assert!((m.parallel_throughput(Some(3)) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn noc_size_matches_thread_count() {
        assert_eq!(Machine::table1(16).noc().cores(), 16);
        assert_eq!(
            Machine::asymmetric(15, 1.0, 4.0, MachineConfig::table1_baseline()).noc().cores(),
            16
        );
    }

    #[test]
    #[should_panic]
    fn zero_core_machine_rejected() {
        Machine::symmetric(0, 1.0, MachineConfig::table1_baseline());
    }

    #[test]
    #[should_panic]
    fn large_core_smaller_than_small_rejected() {
        Machine::asymmetric(4, 4.0, 1.0, MachineConfig::table1_baseline());
    }
}
