//! The timing engine: executes a [`PhaseProgram`] on a [`Machine`] and
//! produces per-phase cycle counts.
//!
//! Timing rules (all times in cycles):
//!
//! * **ParallelWork** — compute time is `ops / (ops_per_cycle ·
//!   parallel_throughput)`, where the throughput honours the phase's
//!   `max_parallelism` cap; memory time is the per-core share of the
//!   references times the average access latency of the phase's working set.
//! * **SerialWork** — runs on the machine's serial core at `perf(r_serial)`.
//! * **Reduction** — depends on the merge implementation:
//!   * *serial linear*: the serial core touches every element of every
//!     partial (`threads · elements` element-merges), reading data written by
//!     other cores (coherence penalty); the working set is all partials, so it
//!     grows with the thread count — this is what makes hop's merge
//!     super-linear once the partial tables outgrow the L1.
//!   * *tree log*: `ceil(log2 threads) · elements` element-merges on the
//!     critical path, plus the same per-level coherence traffic.
//!   * *parallel privatised*: each core merges `elements / threads` of the
//!     element space across all partials (`≈ elements` element-merges of
//!     critical path, independent of the thread count) and the partials are
//!     exchanged over the NoC (`2·(threads − 1)·elements` element-messages).
//! * **Broadcast** — `(threads − 1) · elements` element-messages over the NoC.
//!
//! The per-phase cycles are tagged with `mp_profile::PhaseKind`s so a
//! simulated run can be analysed by exactly the same extraction code as a real
//! one.

use std::borrow::Cow;

use serde::{Deserialize, Serialize};

use mp_profile::{PhaseKind, RunProfile};

use crate::cache::CacheModel;
use crate::machine::Machine;
use crate::program::{PhaseOp, PhaseProgram, ReductionKind};

/// Cycle count of one executed phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimPhase {
    /// Phase classification (parallel / serial / reduction / communication).
    pub kind: PhaseKind,
    /// Label copied from the program (borrowed when the program's label is a
    /// static string, so report construction does not copy it to the heap).
    pub label: Cow<'static, str>,
    /// Simulated duration in cycles.
    pub cycles: f64,
}

/// The result of simulating a program on a machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Program name.
    pub name: String,
    /// Number of cores (merging threads) of the simulated machine.
    pub threads: usize,
    /// Executed phases in order.
    pub phases: Vec<SimPhase>,
}

impl SimReport {
    /// Total cycles over all phases.
    pub fn total_cycles(&self) -> f64 {
        self.phases.iter().map(|p| p.cycles).sum()
    }

    /// Total cycles of phases of one kind.
    pub fn cycles_in(&self, kind: PhaseKind) -> f64 {
        self.phases.iter().filter(|p| p.kind == kind).map(|p| p.cycles).sum()
    }

    /// Cycles spent in the serial section (constant serial + reduction +
    /// communication).
    pub fn serial_cycles(&self) -> f64 {
        self.phases.iter().filter(|p| p.kind.is_serial()).map(|p| p.cycles).sum()
    }

    /// Convert the report into an `mp-profile` [`RunProfile`] using the
    /// machine clock of `machine`. Borrowed phase labels are passed through
    /// without a per-record heap copy.
    pub fn to_profile(&self, machine: &Machine) -> RunProfile {
        let mut profile = RunProfile::new(self.name.clone(), self.threads);
        for p in &self.phases {
            profile.push(mp_profile::PhaseRecord::new(
                p.kind,
                p.label.clone(),
                machine.config().cycles_to_seconds(p.cycles),
                self.threads,
            ));
        }
        profile
    }
}

/// How the label of an emitted phase derives from the program's label.
enum PhaseLabel<'a> {
    /// The program label itself.
    Plain(&'a Cow<'static, str>),
    /// The program label suffixed with `-exchange` (the privatised
    /// reduction's NoC phase).
    Exchange(&'a Cow<'static, str>),
}

impl PhaseLabel<'_> {
    fn materialise(&self) -> Cow<'static, str> {
        match self {
            PhaseLabel::Plain(label) => (*label).clone(),
            PhaseLabel::Exchange(label) => Cow::Owned(format!("{label}-exchange")),
        }
    }
}

/// The timing walk shared by [`simulate`] and [`simulate_cycles`]: executes
/// `program` on `machine` and emits every phase, in order, to `emit`. All of
/// the timing arithmetic lives here exactly once, so the report-building and
/// the allocation-free paths cannot drift apart.
fn walk_phases(
    program: &PhaseProgram,
    machine: &Machine,
    mut emit: impl FnMut(PhaseKind, PhaseLabel<'_>, f64),
) {
    let cache = CacheModel::new(*machine.config());
    let noc = machine.noc();
    let threads = machine.threads();
    let config = machine.config();

    for op in program.unrolled() {
        match op {
            PhaseOp::ParallelWork {
                label,
                ops,
                memory_refs,
                working_set_bytes,
                max_parallelism,
            } => {
                let throughput = machine.parallel_throughput(*max_parallelism);
                let compute = ops / (config.ops_per_cycle * throughput);
                let effective_workers =
                    (threads.min(max_parallelism.unwrap_or(usize::MAX)).max(1)) as f64;
                let memory =
                    cache.memory_cycles(memory_refs / effective_workers, *working_set_bytes, false);
                emit(PhaseKind::Parallel, PhaseLabel::Plain(label), compute + memory);
            }
            PhaseOp::SerialWork { label, ops, memory_refs, working_set_bytes } => {
                let core = machine.serial_core();
                let compute = core.compute_cycles(*ops, config);
                let memory = cache.memory_cycles(*memory_refs, *working_set_bytes, false);
                emit(PhaseKind::SerialConstant, PhaseLabel::Plain(label), compute + memory);
            }
            PhaseOp::Reduction { label, elements, ops_per_element, bytes_per_element, kind } => {
                let x = *elements as f64;
                let serial_core = machine.serial_core();
                let parallel_core = machine.parallel_core();
                // All partials together form the merge working set.
                let partials_bytes = threads * elements * bytes_per_element;
                match kind {
                    ReductionKind::SerialLinear => {
                        // The master walks every partial: threads·x merges.
                        let merges = threads as f64 * x;
                        let compute = serial_core.compute_cycles(merges * ops_per_element, config);
                        let memory = cache.memory_cycles(merges, partials_bytes, threads > 1);
                        emit(PhaseKind::Reduction, PhaseLabel::Plain(label), compute + memory);
                    }
                    ReductionKind::TreeLog => {
                        // Critical path: one merge of x elements per tree level
                        // (plus the initial local copy).
                        let levels = (threads as f64).log2().ceil().max(0.0) + 1.0;
                        let merges = levels * x;
                        let compute = serial_core.compute_cycles(merges * ops_per_element, config);
                        let memory = cache.memory_cycles(
                            merges,
                            (2 * elements * bytes_per_element).max(1),
                            threads > 1,
                        );
                        emit(PhaseKind::Reduction, PhaseLabel::Plain(label), compute + memory);
                    }
                    ReductionKind::ParallelPrivatized => {
                        // Each core merges its share of the element space
                        // across all partials: threads·x/threads = x merges of
                        // critical path on a parallel core.
                        let merges = x.max(1.0);
                        let compute =
                            parallel_core.compute_cycles(merges * ops_per_element, config);
                        let memory = cache.memory_cycles(merges, partials_bytes, threads > 1);
                        emit(PhaseKind::Reduction, PhaseLabel::Plain(label), compute + memory);
                        // The all-to-all exchange of partials over the mesh.
                        let comm = noc.reduction_exchange_cycles(x, threads);
                        if comm > 0.0 {
                            emit(PhaseKind::Communication, PhaseLabel::Exchange(label), comm);
                        }
                    }
                }
            }
            PhaseOp::Broadcast { label, elements } => {
                let messages = (threads.saturating_sub(1) * elements) as f64;
                let cycles = noc.transfer_cycles(messages);
                emit(PhaseKind::Communication, PhaseLabel::Plain(label), cycles);
            }
        }
    }
}

/// Simulate `program` on `machine`, returning per-phase cycles.
pub fn simulate(program: &PhaseProgram, machine: &Machine) -> SimReport {
    let mut phases = Vec::with_capacity(program.phase_count());
    walk_phases(program, machine, |kind, label, cycles| {
        phases.push(SimPhase { kind, label: label.materialise(), cycles });
    });
    SimReport { name: program.name.clone(), threads: machine.threads(), phases }
}

/// Time `program` on `machine` without materialising a report: no `SimPhase`
/// vector, no label strings, no heap traffic at all — just the summed cycle
/// count, bit-identical to `simulate(program, machine).total_cycles()`. This
/// is the design-space-exploration kernel: the DSE sweep calls it once per
/// simulated machine, millions of times per sweep.
pub fn simulate_cycles(program: &PhaseProgram, machine: &Machine) -> f64 {
    let mut total = 0.0;
    walk_phases(program, machine, |_, _, cycles| total += cycles);
    total
}

/// Simulate and directly return an `mp-profile` profile (cycles converted to
/// seconds at the machine clock).
pub fn simulate_profile(program: &PhaseProgram, machine: &Machine) -> RunProfile {
    simulate(program, machine).to_profile(machine)
}

/// Time `program` on every machine in `machines`, writing one total per
/// machine to `out` — bit-identical to calling [`simulate_cycles`] once per
/// machine.
///
/// On AVX2 hosts (and unless `mp_model::simd` forces the scalar path) the
/// machines are timed four per step: per-machine scalars that originate from
/// integer state (thread counts, partial-table sizes, core performances, NoC
/// geometry) are derived exactly as the scalar walk derives them, and the
/// per-op arithmetic — the divisions that dominate a DSE sweep — runs on
/// 4×f64 lanes in the same association order as [`walk_phases`], with the
/// walk's `<= 0` early-outs reproduced as lane blends. Quads whose machines
/// disagree on [`MachineConfig`] (so cache latencies would be lane-variant in
/// ways the kernel does not model) fall back to the scalar walk, as do
/// sub-quad tails.
pub fn simulate_cycles_batch(program: &PhaseProgram, machines: &[Machine], out: &mut [f64]) {
    assert_eq!(machines.len(), out.len(), "one cycle total per machine");
    #[cfg(target_arch = "x86_64")]
    {
        if mp_model::simd::level() == mp_model::simd::SimdLevel::Avx2 {
            let mut i = 0;
            while i + 4 <= machines.len() {
                let quad: &[Machine; 4] = machines[i..i + 4].try_into().expect("exact quad");
                if quad.iter().all(|m| m.config() == quad[0].config()) {
                    let totals = unsafe { lanes::walk_cycles_avx2(program, quad) };
                    out[i..i + 4].copy_from_slice(&totals);
                } else {
                    for j in 0..4 {
                        out[i + j] = simulate_cycles(program, &quad[j]);
                    }
                }
                i += 4;
            }
            for j in i..machines.len() {
                out[j] = simulate_cycles(program, &machines[j]);
            }
            return;
        }
    }
    for (slot, machine) in out.iter_mut().zip(machines) {
        *slot = simulate_cycles(program, machine);
    }
}

/// 4-wide AVX2 timing walk. Bit parity with [`walk_phases`] is a hard
/// contract (see `mp_model::prepared`): no FMA, vector ops in the scalar
/// association order, and every scalar `<= 0.0 → 0.0` early-out reproduced
/// as an ordered-compare blend so NaN inputs poison lanes exactly as they
/// poison the scalar walk. Quantities the scalar walk computes from integer
/// machine state per machine (thread counts, core perfs, NoC exchange
/// cycles, partial-table working sets) are computed here by the *same scalar
/// code* per lane, so only the per-op f64 arithmetic is vectorised.
#[cfg(target_arch = "x86_64")]
mod lanes {
    #[allow(clippy::wildcard_imports)]
    use core::arch::x86_64::*;

    use crate::cache::CacheModel;
    use crate::machine::Machine;
    use crate::noc::NocModel;
    use crate::program::{PhaseOp, PhaseProgram, ReductionKind};

    /// Per-machine state hoisted out of the op loop, mirroring the hoists at
    /// the top of `walk_phases` (plus per-op invariants such as the tree
    /// level count, which the scalar walk recomputes to the same value every
    /// iteration).
    struct Lane {
        threads: usize,
        threads_f: f64,
        serial_perf: f64,
        parallel_perf: f64,
        noc: NocModel,
        tree_levels: f64,
        shared: bool,
    }

    #[inline]
    fn quad(f: impl Fn(usize) -> f64) -> [f64; 4] {
        [f(0), f(1), f(2), f(3)]
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn walk_cycles_avx2(
        program: &PhaseProgram,
        machines: &[Machine; 4],
    ) -> [f64; 4] {
        // All four machines share one config (checked by the dispatcher), so
        // cache latencies of lane-invariant working sets broadcast.
        let config = *machines[0].config();
        let cache = CacheModel::new(config);
        let lanes: [Lane; 4] = std::array::from_fn(|j| {
            let m = &machines[j];
            let threads = m.threads();
            Lane {
                threads,
                threads_f: threads as f64,
                serial_perf: m.serial_core().perf(),
                parallel_perf: m.parallel_core().perf(),
                noc: m.noc(),
                tree_levels: (threads as f64).log2().ceil().max(0.0) + 1.0,
                shared: threads > 1,
            }
        });

        let load = |a: [f64; 4]| _mm256_loadu_pd(a.as_ptr());
        let zero = _mm256_setzero_pd();
        let opc_v = _mm256_set1_pd(config.ops_per_cycle);
        let threads_f_v = load(quad(|j| lanes[j].threads_f));
        // compute_cycles divides by `ops_per_cycle * perf`; the product is
        // identical on every call, so fold it once per core kind.
        let serial_den = _mm256_mul_pd(opc_v, load(quad(|j| lanes[j].serial_perf)));
        let parallel_den = _mm256_mul_pd(opc_v, load(quad(|j| lanes[j].parallel_perf)));

        let mut total = zero;
        for op in program.unrolled() {
            match op {
                PhaseOp::ParallelWork {
                    ops,
                    memory_refs,
                    working_set_bytes,
                    max_parallelism,
                    ..
                } => {
                    let throughput =
                        load(quad(|j| machines[j].parallel_throughput(*max_parallelism)));
                    let compute =
                        _mm256_div_pd(_mm256_set1_pd(*ops), _mm256_mul_pd(opc_v, throughput));
                    let workers = load(quad(|j| {
                        (lanes[j].threads.min(max_parallelism.unwrap_or(usize::MAX)).max(1)) as f64
                    }));
                    let refs = _mm256_div_pd(_mm256_set1_pd(*memory_refs), workers);
                    let lat = _mm256_set1_pd(cache.avg_access_latency(*working_set_bytes, false));
                    // memory_cycles: refs <= 0 → 0, else refs · latency.
                    let refs_le_zero = _mm256_cmp_pd::<_CMP_LE_OQ>(refs, zero);
                    let memory = _mm256_blendv_pd(_mm256_mul_pd(refs, lat), zero, refs_le_zero);
                    total = _mm256_add_pd(total, _mm256_add_pd(compute, memory));
                }
                PhaseOp::SerialWork { ops, memory_refs, working_set_bytes, .. } => {
                    // compute_cycles's `ops <= 0.0` branch is lane-invariant.
                    let compute = if *ops <= 0.0 {
                        zero
                    } else {
                        _mm256_div_pd(_mm256_set1_pd(*ops), serial_den)
                    };
                    let memory = _mm256_set1_pd(cache.memory_cycles(
                        *memory_refs,
                        *working_set_bytes,
                        false,
                    ));
                    total = _mm256_add_pd(total, _mm256_add_pd(compute, memory));
                }
                PhaseOp::Reduction {
                    elements, ops_per_element, bytes_per_element, kind, ..
                } => {
                    let x = *elements as f64;
                    let x_v = _mm256_set1_pd(x);
                    let ope_v = _mm256_set1_pd(*ops_per_element);
                    match kind {
                        ReductionKind::SerialLinear => {
                            let merges = _mm256_mul_pd(threads_f_v, x_v);
                            let merge_ops = _mm256_mul_pd(merges, ope_v);
                            let compute = _mm256_blendv_pd(
                                _mm256_div_pd(merge_ops, serial_den),
                                zero,
                                _mm256_cmp_pd::<_CMP_LE_OQ>(merge_ops, zero),
                            );
                            let lat = load(quad(|j| {
                                let partials = lanes[j].threads * elements * bytes_per_element;
                                cache.avg_access_latency(partials, lanes[j].shared)
                            }));
                            let memory = _mm256_blendv_pd(
                                _mm256_mul_pd(merges, lat),
                                zero,
                                _mm256_cmp_pd::<_CMP_LE_OQ>(merges, zero),
                            );
                            total = _mm256_add_pd(total, _mm256_add_pd(compute, memory));
                        }
                        ReductionKind::TreeLog => {
                            let merges = _mm256_mul_pd(load(quad(|j| lanes[j].tree_levels)), x_v);
                            let merge_ops = _mm256_mul_pd(merges, ope_v);
                            let compute = _mm256_blendv_pd(
                                _mm256_div_pd(merge_ops, serial_den),
                                zero,
                                _mm256_cmp_pd::<_CMP_LE_OQ>(merge_ops, zero),
                            );
                            let ws = (2 * elements * bytes_per_element).max(1);
                            let lat = load(quad(|j| cache.avg_access_latency(ws, lanes[j].shared)));
                            let memory = _mm256_blendv_pd(
                                _mm256_mul_pd(merges, lat),
                                zero,
                                _mm256_cmp_pd::<_CMP_LE_OQ>(merges, zero),
                            );
                            total = _mm256_add_pd(total, _mm256_add_pd(compute, memory));
                        }
                        ReductionKind::ParallelPrivatized => {
                            // `merges` is lane-invariant (x.max(1.0) ≥ 1), so
                            // the scalar `<= 0` branches resolve at scalar
                            // precision exactly as walk_phases resolves them.
                            let merges = x.max(1.0);
                            let merge_ops = merges * *ops_per_element;
                            let compute = if merge_ops <= 0.0 {
                                zero
                            } else {
                                _mm256_div_pd(_mm256_set1_pd(merge_ops), parallel_den)
                            };
                            let lat = load(quad(|j| {
                                let partials = lanes[j].threads * elements * bytes_per_element;
                                cache.avg_access_latency(partials, lanes[j].shared)
                            }));
                            let memory = if merges <= 0.0 {
                                zero
                            } else {
                                _mm256_mul_pd(_mm256_set1_pd(merges), lat)
                            };
                            total = _mm256_add_pd(total, _mm256_add_pd(compute, memory));
                            // The exchange is emitted only when positive; a
                            // suppressed lane adds +0.0, which cannot perturb
                            // a non-negative running total.
                            let comm = load(quad(|j| {
                                lanes[j].noc.reduction_exchange_cycles(x, lanes[j].threads)
                            }));
                            let comm_pos = _mm256_cmp_pd::<_CMP_GT_OQ>(comm, zero);
                            total = _mm256_add_pd(total, _mm256_blendv_pd(zero, comm, comm_pos));
                        }
                    }
                }
                PhaseOp::Broadcast { elements, .. } => {
                    let cycles = load(quad(|j| {
                        let messages = (lanes[j].threads.saturating_sub(1) * elements) as f64;
                        lanes[j].noc.transfer_cycles(messages)
                    }));
                    total = _mm256_add_pd(total, cycles);
                }
            }
        }

        let mut out = [0.0f64; 4];
        _mm256_storeu_pd(out.as_mut_ptr(), total);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn simple_program(kind: ReductionKind) -> PhaseProgram {
        PhaseProgram::new("test")
            .with_body(PhaseOp::ParallelWork {
                label: "work".into(),
                ops: 1_000_000.0,
                memory_refs: 10_000.0,
                working_set_bytes: 32 * 1024,
                max_parallelism: None,
            })
            .with_body(PhaseOp::Reduction {
                label: "merge".into(),
                elements: 100,
                ops_per_element: 1.0,
                bytes_per_element: 8,
                kind,
            })
            .with_body(PhaseOp::SerialWork {
                label: "check".into(),
                ops: 200.0,
                memory_refs: 50.0,
                working_set_bytes: 1024,
            })
            .with_iterations(5)
    }

    #[test]
    fn parallel_phase_scales_with_cores() {
        let program = simple_program(ReductionKind::SerialLinear);
        let t1 = simulate(&program, &Machine::table1(1));
        let t16 = simulate(&program, &Machine::table1(16));
        let p1 = t1.cycles_in(PhaseKind::Parallel);
        let p16 = t16.cycles_in(PhaseKind::Parallel);
        assert!(p1 / p16 > 12.0, "parallel section should scale, got {}", p1 / p16);
    }

    #[test]
    fn serial_phase_does_not_scale() {
        let program = simple_program(ReductionKind::SerialLinear);
        let t1 = simulate(&program, &Machine::table1(1));
        let t16 = simulate(&program, &Machine::table1(16));
        let s1 = t1.cycles_in(PhaseKind::SerialConstant);
        let s16 = t16.cycles_in(PhaseKind::SerialConstant);
        assert!((s1 - s16).abs() / s1 < 1e-9);
    }

    #[test]
    fn linear_reduction_grows_with_thread_count() {
        let program = simple_program(ReductionKind::SerialLinear);
        let r: Vec<f64> = [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&c| simulate(&program, &Machine::table1(c)).cycles_in(PhaseKind::Reduction))
            .collect();
        for w in r.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Roughly linear: 16-core cost should be an order of magnitude above
        // the single-core cost.
        assert!(r[4] / r[0] > 8.0, "got {}", r[4] / r[0]);
    }

    #[test]
    fn tree_reduction_grows_logarithmically() {
        let tree = simple_program(ReductionKind::TreeLog);
        let linear = simple_program(ReductionKind::SerialLinear);
        let at = |p: &PhaseProgram, c: usize| {
            simulate(p, &Machine::table1(c)).cycles_in(PhaseKind::Reduction)
        };
        // Tree grows much more slowly than linear.
        let tree_growth = at(&tree, 16) / at(&tree, 1);
        let linear_growth = at(&linear, 16) / at(&linear, 1);
        assert!(tree_growth < linear_growth / 2.0, "tree {tree_growth} vs linear {linear_growth}");
        assert!(tree_growth < 6.0, "got {tree_growth}");
    }

    #[test]
    fn privatized_reduction_shifts_cost_to_communication() {
        let program = simple_program(ReductionKind::ParallelPrivatized);
        let report = simulate(&program, &Machine::table1(16));
        assert!(report.cycles_in(PhaseKind::Communication) > 0.0);
        // Its compute part grows far more slowly than a serial linear merge
        // (which would be ~16x at 16 threads).
        let r1 = simulate(&program, &Machine::table1(1)).cycles_in(PhaseKind::Reduction);
        let r16 = report.cycles_in(PhaseKind::Reduction);
        assert!(r16 / r1 < 6.0, "privatized compute should not grow much, got {}", r16 / r1);
    }

    #[test]
    fn max_parallelism_caps_scaling() {
        let program = PhaseProgram::new("capped").with_body(PhaseOp::ParallelWork {
            label: "tree-build".into(),
            ops: 1_000_000.0,
            memory_refs: 0.0,
            working_set_bytes: 1024,
            max_parallelism: Some(4),
        });
        let t4 = simulate(&program, &Machine::table1(4)).total_cycles();
        let t16 = simulate(&program, &Machine::table1(16)).total_cycles();
        assert!((t4 - t16).abs() / t4 < 1e-9, "capped phase must not speed up past the cap");
    }

    #[test]
    fn broadcast_costs_nothing_on_a_single_core() {
        let program = PhaseProgram::new("bc")
            .with_body(PhaseOp::Broadcast { label: "bcast".into(), elements: 100 });
        assert_eq!(simulate(&program, &Machine::table1(1)).total_cycles(), 0.0);
        assert!(simulate(&program, &Machine::table1(16)).total_cycles() > 0.0);
    }

    #[test]
    fn asymmetric_machine_accelerates_serial_phases() {
        let program = simple_program(ReductionKind::SerialLinear);
        let sym =
            simulate(&program, &Machine::symmetric(16, 1.0, MachineConfig::table1_baseline()));
        let asym = simulate(
            &program,
            &Machine::asymmetric(12, 1.0, 4.0, MachineConfig::table1_baseline()),
        );
        // The ACMP's large core (perf 2) halves the serial-constant compute.
        assert!(
            asym.cycles_in(PhaseKind::SerialConstant) < sym.cycles_in(PhaseKind::SerialConstant)
        );
    }

    #[test]
    fn report_converts_to_profile() {
        let program = simple_program(ReductionKind::SerialLinear);
        let machine = Machine::table1(8);
        let report = simulate(&program, &machine);
        let profile = report.to_profile(&machine);
        assert_eq!(profile.threads, 8);
        assert_eq!(profile.records.len(), report.phases.len());
        let expected_seconds = machine.config().cycles_to_seconds(report.total_cycles());
        assert!((profile.total_time_with_init() - expected_seconds).abs() < 1e-12);
    }

    #[test]
    fn cycles_kernel_matches_report_total_bitwise() {
        for kind in
            [ReductionKind::SerialLinear, ReductionKind::TreeLog, ReductionKind::ParallelPrivatized]
        {
            let program = simple_program(kind);
            for cores in [1usize, 2, 7, 16, 64] {
                let machine = Machine::table1(cores);
                let report = simulate(&program, &machine).total_cycles();
                let kernel = simulate_cycles(&program, &machine);
                assert_eq!(report.to_bits(), kernel.to_bits(), "{kind:?} cores={cores}");
            }
        }
    }

    #[test]
    fn batch_kernel_matches_scalar_bitwise() {
        for kind in
            [ReductionKind::SerialLinear, ReductionKind::TreeLog, ReductionKind::ParallelPrivatized]
        {
            let program = simple_program(kind);
            // Mixed quads + a tail, symmetric and asymmetric machines.
            let machines: Vec<Machine> = [1usize, 2, 4, 7, 16, 64, 3]
                .iter()
                .map(|&c| Machine::table1(c))
                .chain([
                    Machine::asymmetric(12, 1.0, 4.0, MachineConfig::table1_baseline()),
                    Machine::asymmetric(0, 1.0, 2.0, MachineConfig::table1_baseline()),
                ])
                .collect();
            let mut batched = vec![0.0; machines.len()];
            simulate_cycles_batch(&program, &machines, &mut batched);
            for (machine, got) in machines.iter().zip(&batched) {
                let want = simulate_cycles(&program, machine);
                assert_eq!(want.to_bits(), got.to_bits(), "{kind:?} machine={machine:?}");
            }
        }
    }

    #[test]
    fn static_labels_reach_the_profile_without_copies() {
        let program = simple_program(ReductionKind::SerialLinear);
        let machine = Machine::table1(4);
        let report = simulate(&program, &machine);
        // Program labels are static strings, so the report (and the profile
        // derived from it) must carry borrowed labels.
        assert!(report.phases.iter().all(|p| matches!(p.label, std::borrow::Cow::Borrowed(_))));
        let profile = report.to_profile(&machine);
        assert!(profile.records.iter().all(|r| matches!(r.label, std::borrow::Cow::Borrowed(_))));
    }

    #[test]
    fn speedup_saturates_due_to_reduction_overhead() {
        // The qualitative Figure 2/3 behaviour: with a linear merge the
        // simulated speedup at high core counts falls below the ideal.
        let program = simple_program(ReductionKind::SerialLinear);
        let base = simulate(&program, &Machine::table1(1)).total_cycles();
        let at64 = simulate(&program, &Machine::table1(64)).total_cycles();
        let speedup = base / at64;
        assert!(speedup > 10.0);
        assert!(
            speedup < 60.0,
            "reduction overhead should hold speedup below ideal, got {speedup}"
        );
    }
}
