//! The timing engine: executes a [`PhaseProgram`] on a [`Machine`] and
//! produces per-phase cycle counts.
//!
//! Timing rules (all times in cycles):
//!
//! * **ParallelWork** — compute time is `ops / (ops_per_cycle ·
//!   parallel_throughput)`, where the throughput honours the phase's
//!   `max_parallelism` cap; memory time is the per-core share of the
//!   references times the average access latency of the phase's working set.
//! * **SerialWork** — runs on the machine's serial core at `perf(r_serial)`.
//! * **Reduction** — depends on the merge implementation:
//!   * *serial linear*: the serial core touches every element of every
//!     partial (`threads · elements` element-merges), reading data written by
//!     other cores (coherence penalty); the working set is all partials, so it
//!     grows with the thread count — this is what makes hop's merge
//!     super-linear once the partial tables outgrow the L1.
//!   * *tree log*: `ceil(log2 threads) · elements` element-merges on the
//!     critical path, plus the same per-level coherence traffic.
//!   * *parallel privatised*: each core merges `elements / threads` of the
//!     element space across all partials (`≈ elements` element-merges of
//!     critical path, independent of the thread count) and the partials are
//!     exchanged over the NoC (`2·(threads − 1)·elements` element-messages).
//! * **Broadcast** — `(threads − 1) · elements` element-messages over the NoC.
//!
//! The per-phase cycles are tagged with `mp_profile::PhaseKind`s so a
//! simulated run can be analysed by exactly the same extraction code as a real
//! one.

use std::borrow::Cow;

use serde::{Deserialize, Serialize};

use mp_profile::{PhaseKind, RunProfile};

use crate::cache::CacheModel;
use crate::machine::Machine;
use crate::program::{PhaseOp, PhaseProgram, ReductionKind};

/// Cycle count of one executed phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimPhase {
    /// Phase classification (parallel / serial / reduction / communication).
    pub kind: PhaseKind,
    /// Label copied from the program (borrowed when the program's label is a
    /// static string, so report construction does not copy it to the heap).
    pub label: Cow<'static, str>,
    /// Simulated duration in cycles.
    pub cycles: f64,
}

/// The result of simulating a program on a machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Program name.
    pub name: String,
    /// Number of cores (merging threads) of the simulated machine.
    pub threads: usize,
    /// Executed phases in order.
    pub phases: Vec<SimPhase>,
}

impl SimReport {
    /// Total cycles over all phases.
    pub fn total_cycles(&self) -> f64 {
        self.phases.iter().map(|p| p.cycles).sum()
    }

    /// Total cycles of phases of one kind.
    pub fn cycles_in(&self, kind: PhaseKind) -> f64 {
        self.phases.iter().filter(|p| p.kind == kind).map(|p| p.cycles).sum()
    }

    /// Cycles spent in the serial section (constant serial + reduction +
    /// communication).
    pub fn serial_cycles(&self) -> f64 {
        self.phases.iter().filter(|p| p.kind.is_serial()).map(|p| p.cycles).sum()
    }

    /// Convert the report into an `mp-profile` [`RunProfile`] using the
    /// machine clock of `machine`. Borrowed phase labels are passed through
    /// without a per-record heap copy.
    pub fn to_profile(&self, machine: &Machine) -> RunProfile {
        let mut profile = RunProfile::new(self.name.clone(), self.threads);
        for p in &self.phases {
            profile.push(mp_profile::PhaseRecord::new(
                p.kind,
                p.label.clone(),
                machine.config().cycles_to_seconds(p.cycles),
                self.threads,
            ));
        }
        profile
    }
}

/// How the label of an emitted phase derives from the program's label.
enum PhaseLabel<'a> {
    /// The program label itself.
    Plain(&'a Cow<'static, str>),
    /// The program label suffixed with `-exchange` (the privatised
    /// reduction's NoC phase).
    Exchange(&'a Cow<'static, str>),
}

impl PhaseLabel<'_> {
    fn materialise(&self) -> Cow<'static, str> {
        match self {
            PhaseLabel::Plain(label) => (*label).clone(),
            PhaseLabel::Exchange(label) => Cow::Owned(format!("{label}-exchange")),
        }
    }
}

/// The timing walk shared by [`simulate`] and [`simulate_cycles`]: executes
/// `program` on `machine` and emits every phase, in order, to `emit`. All of
/// the timing arithmetic lives here exactly once, so the report-building and
/// the allocation-free paths cannot drift apart.
fn walk_phases(
    program: &PhaseProgram,
    machine: &Machine,
    mut emit: impl FnMut(PhaseKind, PhaseLabel<'_>, f64),
) {
    let cache = CacheModel::new(*machine.config());
    let noc = machine.noc();
    let threads = machine.threads();
    let config = machine.config();

    for op in program.unrolled() {
        match op {
            PhaseOp::ParallelWork {
                label,
                ops,
                memory_refs,
                working_set_bytes,
                max_parallelism,
            } => {
                let throughput = machine.parallel_throughput(*max_parallelism);
                let compute = ops / (config.ops_per_cycle * throughput);
                let effective_workers =
                    (threads.min(max_parallelism.unwrap_or(usize::MAX)).max(1)) as f64;
                let memory =
                    cache.memory_cycles(memory_refs / effective_workers, *working_set_bytes, false);
                emit(PhaseKind::Parallel, PhaseLabel::Plain(label), compute + memory);
            }
            PhaseOp::SerialWork { label, ops, memory_refs, working_set_bytes } => {
                let core = machine.serial_core();
                let compute = core.compute_cycles(*ops, config);
                let memory = cache.memory_cycles(*memory_refs, *working_set_bytes, false);
                emit(PhaseKind::SerialConstant, PhaseLabel::Plain(label), compute + memory);
            }
            PhaseOp::Reduction { label, elements, ops_per_element, bytes_per_element, kind } => {
                let x = *elements as f64;
                let serial_core = machine.serial_core();
                let parallel_core = machine.parallel_core();
                // All partials together form the merge working set.
                let partials_bytes = threads * elements * bytes_per_element;
                match kind {
                    ReductionKind::SerialLinear => {
                        // The master walks every partial: threads·x merges.
                        let merges = threads as f64 * x;
                        let compute = serial_core.compute_cycles(merges * ops_per_element, config);
                        let memory = cache.memory_cycles(merges, partials_bytes, threads > 1);
                        emit(PhaseKind::Reduction, PhaseLabel::Plain(label), compute + memory);
                    }
                    ReductionKind::TreeLog => {
                        // Critical path: one merge of x elements per tree level
                        // (plus the initial local copy).
                        let levels = (threads as f64).log2().ceil().max(0.0) + 1.0;
                        let merges = levels * x;
                        let compute = serial_core.compute_cycles(merges * ops_per_element, config);
                        let memory = cache.memory_cycles(
                            merges,
                            (2 * elements * bytes_per_element).max(1),
                            threads > 1,
                        );
                        emit(PhaseKind::Reduction, PhaseLabel::Plain(label), compute + memory);
                    }
                    ReductionKind::ParallelPrivatized => {
                        // Each core merges its share of the element space
                        // across all partials: threads·x/threads = x merges of
                        // critical path on a parallel core.
                        let merges = x.max(1.0);
                        let compute =
                            parallel_core.compute_cycles(merges * ops_per_element, config);
                        let memory = cache.memory_cycles(merges, partials_bytes, threads > 1);
                        emit(PhaseKind::Reduction, PhaseLabel::Plain(label), compute + memory);
                        // The all-to-all exchange of partials over the mesh.
                        let comm = noc.reduction_exchange_cycles(x, threads);
                        if comm > 0.0 {
                            emit(PhaseKind::Communication, PhaseLabel::Exchange(label), comm);
                        }
                    }
                }
            }
            PhaseOp::Broadcast { label, elements } => {
                let messages = (threads.saturating_sub(1) * elements) as f64;
                let cycles = noc.transfer_cycles(messages);
                emit(PhaseKind::Communication, PhaseLabel::Plain(label), cycles);
            }
        }
    }
}

/// Simulate `program` on `machine`, returning per-phase cycles.
pub fn simulate(program: &PhaseProgram, machine: &Machine) -> SimReport {
    let mut phases = Vec::with_capacity(program.phase_count());
    walk_phases(program, machine, |kind, label, cycles| {
        phases.push(SimPhase { kind, label: label.materialise(), cycles });
    });
    SimReport { name: program.name.clone(), threads: machine.threads(), phases }
}

/// Time `program` on `machine` without materialising a report: no `SimPhase`
/// vector, no label strings, no heap traffic at all — just the summed cycle
/// count, bit-identical to `simulate(program, machine).total_cycles()`. This
/// is the design-space-exploration kernel: the DSE sweep calls it once per
/// simulated machine, millions of times per sweep.
pub fn simulate_cycles(program: &PhaseProgram, machine: &Machine) -> f64 {
    let mut total = 0.0;
    walk_phases(program, machine, |_, _, cycles| total += cycles);
    total
}

/// Simulate and directly return an `mp-profile` profile (cycles converted to
/// seconds at the machine clock).
pub fn simulate_profile(program: &PhaseProgram, machine: &Machine) -> RunProfile {
    simulate(program, machine).to_profile(machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn simple_program(kind: ReductionKind) -> PhaseProgram {
        PhaseProgram::new("test")
            .with_body(PhaseOp::ParallelWork {
                label: "work".into(),
                ops: 1_000_000.0,
                memory_refs: 10_000.0,
                working_set_bytes: 32 * 1024,
                max_parallelism: None,
            })
            .with_body(PhaseOp::Reduction {
                label: "merge".into(),
                elements: 100,
                ops_per_element: 1.0,
                bytes_per_element: 8,
                kind,
            })
            .with_body(PhaseOp::SerialWork {
                label: "check".into(),
                ops: 200.0,
                memory_refs: 50.0,
                working_set_bytes: 1024,
            })
            .with_iterations(5)
    }

    #[test]
    fn parallel_phase_scales_with_cores() {
        let program = simple_program(ReductionKind::SerialLinear);
        let t1 = simulate(&program, &Machine::table1(1));
        let t16 = simulate(&program, &Machine::table1(16));
        let p1 = t1.cycles_in(PhaseKind::Parallel);
        let p16 = t16.cycles_in(PhaseKind::Parallel);
        assert!(p1 / p16 > 12.0, "parallel section should scale, got {}", p1 / p16);
    }

    #[test]
    fn serial_phase_does_not_scale() {
        let program = simple_program(ReductionKind::SerialLinear);
        let t1 = simulate(&program, &Machine::table1(1));
        let t16 = simulate(&program, &Machine::table1(16));
        let s1 = t1.cycles_in(PhaseKind::SerialConstant);
        let s16 = t16.cycles_in(PhaseKind::SerialConstant);
        assert!((s1 - s16).abs() / s1 < 1e-9);
    }

    #[test]
    fn linear_reduction_grows_with_thread_count() {
        let program = simple_program(ReductionKind::SerialLinear);
        let r: Vec<f64> = [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&c| simulate(&program, &Machine::table1(c)).cycles_in(PhaseKind::Reduction))
            .collect();
        for w in r.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Roughly linear: 16-core cost should be an order of magnitude above
        // the single-core cost.
        assert!(r[4] / r[0] > 8.0, "got {}", r[4] / r[0]);
    }

    #[test]
    fn tree_reduction_grows_logarithmically() {
        let tree = simple_program(ReductionKind::TreeLog);
        let linear = simple_program(ReductionKind::SerialLinear);
        let at = |p: &PhaseProgram, c: usize| {
            simulate(p, &Machine::table1(c)).cycles_in(PhaseKind::Reduction)
        };
        // Tree grows much more slowly than linear.
        let tree_growth = at(&tree, 16) / at(&tree, 1);
        let linear_growth = at(&linear, 16) / at(&linear, 1);
        assert!(tree_growth < linear_growth / 2.0, "tree {tree_growth} vs linear {linear_growth}");
        assert!(tree_growth < 6.0, "got {tree_growth}");
    }

    #[test]
    fn privatized_reduction_shifts_cost_to_communication() {
        let program = simple_program(ReductionKind::ParallelPrivatized);
        let report = simulate(&program, &Machine::table1(16));
        assert!(report.cycles_in(PhaseKind::Communication) > 0.0);
        // Its compute part grows far more slowly than a serial linear merge
        // (which would be ~16x at 16 threads).
        let r1 = simulate(&program, &Machine::table1(1)).cycles_in(PhaseKind::Reduction);
        let r16 = report.cycles_in(PhaseKind::Reduction);
        assert!(r16 / r1 < 6.0, "privatized compute should not grow much, got {}", r16 / r1);
    }

    #[test]
    fn max_parallelism_caps_scaling() {
        let program = PhaseProgram::new("capped").with_body(PhaseOp::ParallelWork {
            label: "tree-build".into(),
            ops: 1_000_000.0,
            memory_refs: 0.0,
            working_set_bytes: 1024,
            max_parallelism: Some(4),
        });
        let t4 = simulate(&program, &Machine::table1(4)).total_cycles();
        let t16 = simulate(&program, &Machine::table1(16)).total_cycles();
        assert!((t4 - t16).abs() / t4 < 1e-9, "capped phase must not speed up past the cap");
    }

    #[test]
    fn broadcast_costs_nothing_on_a_single_core() {
        let program = PhaseProgram::new("bc")
            .with_body(PhaseOp::Broadcast { label: "bcast".into(), elements: 100 });
        assert_eq!(simulate(&program, &Machine::table1(1)).total_cycles(), 0.0);
        assert!(simulate(&program, &Machine::table1(16)).total_cycles() > 0.0);
    }

    #[test]
    fn asymmetric_machine_accelerates_serial_phases() {
        let program = simple_program(ReductionKind::SerialLinear);
        let sym =
            simulate(&program, &Machine::symmetric(16, 1.0, MachineConfig::table1_baseline()));
        let asym = simulate(
            &program,
            &Machine::asymmetric(12, 1.0, 4.0, MachineConfig::table1_baseline()),
        );
        // The ACMP's large core (perf 2) halves the serial-constant compute.
        assert!(
            asym.cycles_in(PhaseKind::SerialConstant) < sym.cycles_in(PhaseKind::SerialConstant)
        );
    }

    #[test]
    fn report_converts_to_profile() {
        let program = simple_program(ReductionKind::SerialLinear);
        let machine = Machine::table1(8);
        let report = simulate(&program, &machine);
        let profile = report.to_profile(&machine);
        assert_eq!(profile.threads, 8);
        assert_eq!(profile.records.len(), report.phases.len());
        let expected_seconds = machine.config().cycles_to_seconds(report.total_cycles());
        assert!((profile.total_time_with_init() - expected_seconds).abs() < 1e-12);
    }

    #[test]
    fn cycles_kernel_matches_report_total_bitwise() {
        for kind in
            [ReductionKind::SerialLinear, ReductionKind::TreeLog, ReductionKind::ParallelPrivatized]
        {
            let program = simple_program(kind);
            for cores in [1usize, 2, 7, 16, 64] {
                let machine = Machine::table1(cores);
                let report = simulate(&program, &machine).total_cycles();
                let kernel = simulate_cycles(&program, &machine);
                assert_eq!(report.to_bits(), kernel.to_bits(), "{kind:?} cores={cores}");
            }
        }
    }

    #[test]
    fn static_labels_reach_the_profile_without_copies() {
        let program = simple_program(ReductionKind::SerialLinear);
        let machine = Machine::table1(4);
        let report = simulate(&program, &machine);
        // Program labels are static strings, so the report (and the profile
        // derived from it) must carry borrowed labels.
        assert!(report.phases.iter().all(|p| matches!(p.label, std::borrow::Cow::Borrowed(_))));
        let profile = report.to_profile(&machine);
        assert!(profile.records.iter().all(|r| matches!(r.label, std::borrow::Cow::Borrowed(_))));
    }

    #[test]
    fn speedup_saturates_due_to_reduction_overhead() {
        // The qualitative Figure 2/3 behaviour: with a linear merge the
        // simulated speedup at high core counts falls below the ideal.
        let program = simple_program(ReductionKind::SerialLinear);
        let base = simulate(&program, &Machine::table1(1)).total_cycles();
        let at64 = simulate(&program, &Machine::table1(64)).total_cycles();
        let speedup = base / at64;
        assert!(speedup > 10.0);
        assert!(
            speedup < 60.0,
            "reduction overhead should hold speedup below ideal, got {speedup}"
        );
    }
}
