//! Core timing model.
//!
//! A core is characterised by its area in base-core equivalents (BCE) and a
//! performance model mapping area to single-thread performance relative to a
//! 1-BCE core. The default follows the paper's assumption (`perf(r) = sqrt(r)`,
//! Pollack's rule). The core executes abstract *operations*; at `perf(r)` and
//! `ops_per_cycle` the time to run `ops` operations is
//! `ops / (ops_per_cycle · perf(r))` cycles, plus whatever memory time the
//! cache model charges on top.

use serde::{Deserialize, Serialize};

use mp_model::perf::PerfModel;

use crate::config::MachineConfig;

/// A core with an area budget and a performance model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreModel {
    /// Core area in base-core equivalents.
    pub area_bce: f64,
    /// Area → performance mapping.
    pub perf_model: PerfModel,
}

impl CoreModel {
    /// A 1-BCE baseline core under Pollack's rule.
    pub fn baseline() -> Self {
        CoreModel { area_bce: 1.0, perf_model: PerfModel::Pollack }
    }

    /// A core of `area_bce` BCE under Pollack's rule.
    pub fn with_area(area_bce: f64) -> Self {
        CoreModel { area_bce, perf_model: PerfModel::Pollack }
    }

    /// Relative performance of this core versus the 1-BCE baseline.
    pub fn perf(&self) -> f64 {
        self.perf_model.perf(self.area_bce).expect("core area must be positive")
    }

    /// Cycles to execute `ops` compute operations on this core (no memory
    /// component).
    pub fn compute_cycles(&self, ops: f64, config: &MachineConfig) -> f64 {
        if ops <= 0.0 {
            return 0.0;
        }
        ops / (config.ops_per_cycle * self.perf())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_core_runs_at_unit_perf() {
        let c = CoreModel::baseline();
        assert!((c.perf() - 1.0).abs() < 1e-12);
        let cfg = MachineConfig::table1_baseline();
        assert!((c.compute_cycles(1000.0, &cfg) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn four_bce_core_is_twice_as_fast() {
        let cfg = MachineConfig::table1_baseline();
        let big = CoreModel::with_area(4.0);
        assert!((big.perf() - 2.0).abs() < 1e-12);
        assert!((big.compute_cycles(1000.0, &cfg) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn zero_ops_take_zero_cycles() {
        let cfg = MachineConfig::table1_baseline();
        assert_eq!(CoreModel::baseline().compute_cycles(0.0, &cfg), 0.0);
        assert_eq!(CoreModel::baseline().compute_cycles(-5.0, &cfg), 0.0);
    }

    #[test]
    fn linear_perf_model_is_supported() {
        let c = CoreModel { area_bce: 4.0, perf_model: PerfModel::Linear };
        assert!((c.perf() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn non_positive_area_panics_on_use() {
        CoreModel { area_bce: 0.0, perf_model: PerfModel::Pollack }.perf();
    }
}
