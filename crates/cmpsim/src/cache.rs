//! Two-level cache cost model.
//!
//! The timing engine does not simulate individual accesses; instead each phase
//! declares how many memory references it performs, how large its working set
//! is and whether the data it touches was last written by other cores. The
//! cache model converts that into an *average latency per reference*:
//!
//! * working set fits in L1 → L1 latency,
//! * fits in L2 → a mix of L1 and L2 latency proportional to the overflow,
//! * exceeds L2 → a mix including main-memory latency,
//! * shared (producer–consumer) data additionally pays the MESI ownership
//!   transfer penalty on the fraction of references that miss in L1.
//!
//! This is deliberately simple, but it captures the effect the paper points to
//! for hop: when the merging phase's working set grows with the number of
//! per-thread partial tables it stops fitting in the private cache and the
//! per-element merge cost rises — producing super-linear growth of the merging
//! phase.

use serde::{Deserialize, Serialize};

use crate::config::MachineConfig;

/// Average-latency cache model derived from a [`MachineConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheModel {
    config: MachineConfig,
}

impl CacheModel {
    /// Build the cache model for a machine configuration.
    pub fn new(config: MachineConfig) -> Self {
        CacheModel { config }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Fraction of references that miss a cache of `capacity` bytes for a
    /// working set of `working_set` bytes, assuming uniform reuse. 0 when the
    /// working set fits, approaching 1 as the working set grows far beyond the
    /// capacity.
    fn miss_fraction(capacity: usize, working_set: usize) -> f64 {
        if working_set <= capacity || working_set == 0 {
            0.0
        } else {
            1.0 - capacity as f64 / working_set as f64
        }
    }

    /// Average latency (cycles) of one data reference for a phase with the
    /// given working-set size. `shared` marks references to data produced by
    /// other cores (coherence misses on first touch).
    pub fn avg_access_latency(&self, working_set_bytes: usize, shared: bool) -> f64 {
        let c = &self.config;
        let l1_miss = Self::miss_fraction(c.l1_bytes, working_set_bytes);
        let l2_miss = Self::miss_fraction(c.l2_bytes, working_set_bytes);
        // L1 hits cost l1_latency; L1 misses that hit L2 cost l2_latency; L2
        // misses cost memory latency.
        let mut latency = c.l1_latency
            + l1_miss * (c.l2_latency - c.l1_latency)
            + l2_miss * (c.mem_latency - c.l2_latency);
        if shared {
            // Data written by another core must be fetched from its cache (or
            // L2 after write-back); charge the coherence penalty on the
            // references that cannot be satisfied from the local L1. (Capacity
            // misses are used as the proxy for remote fetches; small shared
            // working sets that fit in L1 are assumed to be forwarded cheaply,
            // which keeps the merging-phase growth close to the near-linear
            // behaviour the paper measures for kmeans/fuzzy while still making
            // large shared merges — hop's group tables — markedly more
            // expensive.)
            latency += l1_miss * c.coherence_latency;
        }
        latency
    }

    /// Total memory cycles for `references` accesses over a working set.
    pub fn memory_cycles(&self, references: f64, working_set_bytes: usize, shared: bool) -> f64 {
        if references <= 0.0 {
            return 0.0;
        }
        references * self.avg_access_latency(working_set_bytes, shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CacheModel {
        CacheModel::new(MachineConfig::table1_baseline())
    }

    #[test]
    fn small_working_sets_hit_l1() {
        let m = model();
        let lat = m.avg_access_latency(16 * 1024, false);
        assert!((lat - m.config().l1_latency).abs() < 1e-12);
    }

    #[test]
    fn medium_working_sets_pay_l2_latency() {
        let m = model();
        let lat = m.avg_access_latency(1024 * 1024, false);
        assert!(lat > m.config().l1_latency);
        assert!(lat < m.config().mem_latency);
    }

    #[test]
    fn huge_working_sets_approach_memory_latency() {
        let m = model();
        let lat = m.avg_access_latency(1 << 30, false);
        assert!(lat > 0.9 * m.config().mem_latency);
    }

    #[test]
    fn latency_is_monotone_in_working_set() {
        let m = model();
        let mut prev = 0.0;
        for ws in [1usize << 10, 1 << 14, 1 << 17, 1 << 20, 1 << 23, 1 << 26, 1 << 29] {
            let lat = m.avg_access_latency(ws, false);
            assert!(lat >= prev);
            prev = lat;
        }
    }

    #[test]
    fn shared_data_costs_more_once_it_spills_the_l1() {
        let m = model();
        for ws in [1usize << 18, 1 << 21, 1 << 24] {
            assert!(m.avg_access_latency(ws, true) > m.avg_access_latency(ws, false));
        }
        // Small shared working sets are forwarded cheaply (no penalty).
        let small = 1usize << 12;
        assert_eq!(m.avg_access_latency(small, true), m.avg_access_latency(small, false));
    }

    #[test]
    fn memory_cycles_scale_with_references() {
        let m = model();
        let one = m.memory_cycles(1.0, 1 << 20, false);
        let thousand = m.memory_cycles(1000.0, 1 << 20, false);
        assert!((thousand - 1000.0 * one).abs() < 1e-6);
        assert_eq!(m.memory_cycles(0.0, 1 << 20, false), 0.0);
    }

    #[test]
    fn miss_fraction_boundaries() {
        assert_eq!(CacheModel::miss_fraction(1024, 0), 0.0);
        assert_eq!(CacheModel::miss_fraction(1024, 1024), 0.0);
        assert!(CacheModel::miss_fraction(1024, 2048) > 0.49);
        assert!(CacheModel::miss_fraction(1024, 1 << 30) > 0.99);
    }
}
