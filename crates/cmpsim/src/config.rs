//! Machine configuration (paper Table I).
//!
//! The baseline SESC configuration the paper simulates is a 4-wide
//! out-of-order core with 16 KB / 64 KB private L1 instruction/data caches, a
//! 4 MB shared 16-way L2 and MESI coherence. The timing simulator only needs
//! the parameters that affect phase-level timing: effective issue width
//! (operations per cycle at IPC 1 equivalent), cache sizes and latencies,
//! memory latency, NoC hop latency and the clock frequency used to convert
//! cycles into seconds for the profiles.

use serde::{Deserialize, Serialize};

/// Phase-level machine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Peak operations per cycle of a 1-BCE baseline core. Table I's 4-wide
    /// fetch/issue/commit front end sustains roughly one arithmetic operation
    /// per cycle on the clustering kernels, so the default is 1.0.
    pub ops_per_cycle: f64,
    /// Private L1 data cache capacity in bytes (Table I: 64 KB).
    pub l1_bytes: usize,
    /// L1 hit latency in cycles.
    pub l1_latency: f64,
    /// Shared L2 capacity in bytes (Table I: 4 MB).
    pub l2_bytes: usize,
    /// L2 hit latency in cycles.
    pub l2_latency: f64,
    /// Main-memory latency in cycles.
    pub mem_latency: f64,
    /// Extra latency charged to an access that hits data last written by a
    /// different core (MESI ownership transfer).
    pub coherence_latency: f64,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Per-hop latency of the on-chip network, in cycles.
    pub noc_hop_latency: f64,
    /// Bytes per reduction element moved over the NoC (one f64 accumulator).
    pub element_bytes: usize,
    /// Clock frequency in Hz, used to express simulated times in seconds.
    pub frequency_hz: f64,
}

impl MachineConfig {
    /// The paper's Table I baseline configuration.
    pub fn table1_baseline() -> Self {
        MachineConfig {
            ops_per_cycle: 1.0,
            l1_bytes: 64 * 1024,
            l1_latency: 2.0,
            l2_bytes: 4 * 1024 * 1024,
            l2_latency: 12.0,
            mem_latency: 200.0,
            coherence_latency: 40.0,
            line_bytes: 64,
            noc_hop_latency: 3.0,
            element_bytes: 8,
            frequency_hz: 2.0e9,
        }
    }

    /// Convert a cycle count into seconds at this configuration's clock.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / self.frequency_hz
    }

    /// Lines needed to hold `bytes` of data.
    pub fn lines_for(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.line_bytes)
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::table1_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_are_sane() {
        let c = MachineConfig::table1_baseline();
        assert_eq!(c.l1_bytes, 65536);
        assert_eq!(c.l2_bytes, 4 * 1024 * 1024);
        assert!(c.l1_latency < c.l2_latency);
        assert!(c.l2_latency < c.mem_latency);
        assert!(c.ops_per_cycle > 0.0);
    }

    #[test]
    fn cycle_conversion_uses_frequency() {
        let c = MachineConfig::table1_baseline();
        assert!((c.cycles_to_seconds(2.0e9) - 1.0).abs() < 1e-12);
        assert_eq!(c.cycles_to_seconds(0.0), 0.0);
    }

    #[test]
    fn line_count_rounds_up() {
        let c = MachineConfig::table1_baseline();
        assert_eq!(c.lines_for(0), 0);
        assert_eq!(c.lines_for(1), 1);
        assert_eq!(c.lines_for(64), 1);
        assert_eq!(c.lines_for(65), 2);
    }

    #[test]
    fn default_is_table1() {
        assert_eq!(MachineConfig::default(), MachineConfig::table1_baseline());
    }

    #[test]
    fn serializes_roundtrip() {
        let c = MachineConfig::table1_baseline();
        let json = serde_json::to_string(&c).unwrap();
        let back: MachineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
